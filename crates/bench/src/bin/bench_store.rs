//! `bench_store` — the store-protocol harness.
//!
//! Spins up an **in-process** `StoreServer` on an ephemeral port (the
//! same worker-pool core `cfr-store-serve` runs) over a throwaway
//! directory and measures the protocol-level wins of this round of the
//! daemon work, writing machine-readable results to `BENCH_store.json`:
//!
//! - **batching** — per-key `GET`/`PUT` loops vs one pipelined
//!   `MGET`/`MPUT` exchange for the same key set, as network round
//!   trips and wall time (acceptance: the batched probe takes ≥5×
//!   fewer round trips);
//! - **framing** — the same batched probe over binary vs text frames;
//! - **global dedup** — N clients racing one cold key through
//!   `CLAIM`/`WAIT`: exactly one is granted (computes), the rest park
//!   and are served the published value.
//!
//! ```sh
//! cargo run -p cfr-bench --release --bin bench_store
//! cargo run -p cfr-bench --release --bin bench_store -- --keys 64 --out out.json
//! ```
//!
//! Everything runs over real TCP on loopback, so round-trip counts are
//! genuine request/reply exchanges — only propagation delay is missing
//! relative to a LAN daemon, which makes the round-trip *ratio* (not
//! the absolute wall time) the number that transfers.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use cfr_types::net::{RemoteStore, ServerConfig, StoreServer, WireFormat};
use cfr_types::store::{ArtifactStore, ClaimOutcome, GcPolicy, StoreBackend, NS_RUNS};

/// One measured pass: how many exchanges it took and how long.
struct Pass {
    round_trips: u64,
    requests: u64,
    wall_seconds: f64,
    keys: usize,
}

impl Pass {
    fn keys_per_sec(&self) -> f64 {
        self.keys as f64 / self.wall_seconds
    }
}

fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Deterministic pseudo-record of `bytes` single-line characters — the
/// payload shape of a stored run report, without depending on one.
fn synthetic_value(i: usize, bytes: usize) -> String {
    let mut v = format!("record {i} ");
    let mut x = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    while v.len() < bytes {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let _ = write!(v, "{x:016x}");
    }
    v.truncate(bytes);
    v
}

fn key(prefix: &str, i: usize) -> String {
    format!("bench {prefix} key {i:05}")
}

fn usage() -> ! {
    eprintln!("usage: bench_store [--keys N] [--value-bytes N] [--clients N] [--out FILE]");
    std::process::exit(2);
}

fn main() {
    let mut keys = 400usize;
    let mut value_bytes = 2048usize;
    let mut clients = 8usize;
    let mut out_path = String::from("BENCH_store.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let (flag, inline) = match arg.split_once('=') {
            Some((f, v)) => (f.to_string(), Some(v.to_string())),
            None => (arg.clone(), None),
        };
        let mut value_of = || {
            inline
                .clone()
                .or_else(|| args.next())
                .unwrap_or_else(|| usage())
        };
        match flag.as_str() {
            "--keys" => {
                keys = value_of()
                    .parse()
                    .ok()
                    .filter(|n| *n > 0)
                    .unwrap_or_else(|| usage())
            }
            "--value-bytes" => {
                value_bytes = value_of()
                    .parse()
                    .ok()
                    .filter(|n| *n > 0)
                    .unwrap_or_else(|| usage());
            }
            "--clients" => {
                clients = value_of()
                    .parse()
                    .ok()
                    .filter(|n| *n > 1)
                    .unwrap_or_else(|| usage());
            }
            "--out" => out_path = value_of(),
            _ => usage(),
        }
    }

    // The daemon under test: in-process, ephemeral port, throwaway dir.
    let dir = std::env::temp_dir().join(format!("cfr-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = Arc::new(ArtifactStore::open(&dir, GcPolicy::unbounded()).expect("temp store"));
    let config = ServerConfig {
        gc_policy: GcPolicy::unbounded(),
        gc_interval: None,
        ..ServerConfig::default()
    };
    let server = StoreServer::bind(store, "127.0.0.1:0", config).expect("bind loopback");
    let addr = server.addr().to_string();
    eprintln!(
        "bench_store: daemon on {addr}, {keys} keys x {value_bytes} B, {clients} racing clients"
    );

    let values: Vec<String> = (0..keys).map(|i| synthetic_value(i, value_bytes)).collect();

    // ---- PUT side: per-key saves vs one batched MPUT exchange. ----
    // Distinct key ranges so both passes write cold records.
    let serial_put = {
        let client = RemoteStore::new(&addr);
        let start = Instant::now();
        for (i, v) in values.iter().enumerate() {
            assert!(
                client.try_save(NS_RUNS, &key("serial", i), v),
                "daemon save"
            );
        }
        Pass {
            round_trips: client.round_trips(),
            requests: client.requests_sent(),
            wall_seconds: start.elapsed().as_secs_f64(),
            keys,
        }
    };
    let batched_put = {
        let client = RemoteStore::new(&addr);
        let items: Vec<(String, String, String)> = values
            .iter()
            .enumerate()
            .map(|(i, v)| (NS_RUNS.to_string(), key("batch", i), v.clone()))
            .collect();
        let start = Instant::now();
        assert!(client.try_save_many(&items), "daemon batched save");
        Pass {
            round_trips: client.round_trips(),
            requests: client.requests_sent(),
            wall_seconds: start.elapsed().as_secs_f64(),
            keys,
        }
    };

    // ---- GET side: per-key loads vs one batched MGET exchange. ----
    let serial_get = {
        let client = RemoteStore::new(&addr);
        let start = Instant::now();
        for (i, v) in values.iter().enumerate() {
            let got = client.load(NS_RUNS, &key("serial", i));
            assert_eq!(got.as_deref(), Some(v.as_str()), "warm daemon hit");
        }
        Pass {
            round_trips: client.round_trips(),
            requests: client.requests_sent(),
            wall_seconds: start.elapsed().as_secs_f64(),
            keys,
        }
    };
    let mget_items: Vec<(String, String)> = (0..keys)
        .map(|i| (NS_RUNS.to_string(), key("batch", i)))
        .collect();
    let batched_get = {
        let client = RemoteStore::new(&addr);
        let start = Instant::now();
        let got = client.load_many(&mget_items);
        let wall = start.elapsed().as_secs_f64();
        assert!(
            got.iter()
                .zip(&values)
                .all(|(g, v)| g.as_deref() == Some(v.as_str())),
            "warm batched hits"
        );
        Pass {
            round_trips: client.round_trips(),
            requests: client.requests_sent(),
            wall_seconds: wall,
            keys,
        }
    };
    let ratio = serial_get.round_trips as f64 / batched_get.round_trips.max(1) as f64;
    eprintln!(
        "  get: {} round trips serial vs {} batched ({ratio:.0}x fewer), \
         {:.0} vs {:.0} keys/sec",
        serial_get.round_trips,
        batched_get.round_trips,
        serial_get.keys_per_sec(),
        batched_get.keys_per_sec(),
    );
    // The acceptance bar this harness exists to witness.
    assert!(
        ratio >= 5.0,
        "batched MGET must take >=5x fewer round trips (got {ratio:.1}x)"
    );

    // ---- Framing: the same batched probe over binary vs text. ----
    let framed = |allow_binary: bool| -> (Pass, WireFormat) {
        let client = if allow_binary {
            RemoteStore::new(&addr)
        } else {
            RemoteStore::new_text_only(&addr)
        };
        // Connect + negotiate outside the timed region; the warm-up
        // exchange is subtracted from the counters below.
        assert!(client.stats().is_some(), "daemon reachable");
        let format = client.wire_format().expect("connected");
        let (warm_trips, warm_reqs) = (client.round_trips(), client.requests_sent());
        let start = Instant::now();
        let got = client.load_many(&mget_items);
        let wall = start.elapsed().as_secs_f64();
        assert_eq!(got.iter().filter(|g| g.is_some()).count(), keys);
        (
            Pass {
                round_trips: client.round_trips() - warm_trips,
                requests: client.requests_sent() - warm_reqs,
                wall_seconds: wall,
                keys,
            },
            format,
        )
    };
    let (binary_get, binary_format) = framed(true);
    let (text_get, text_format) = framed(false);
    assert_eq!(binary_format, WireFormat::Binary, "daemon offers binary");
    assert_eq!(text_format, WireFormat::Text, "text-only stays text");
    eprintln!(
        "  framing: binary {:.0} keys/sec vs text {:.0} keys/sec",
        binary_get.keys_per_sec(),
        text_get.keys_per_sec(),
    );

    // ---- Global dedup: N clients race one cold key. ----
    let dedup_start = Instant::now();
    let (granted, served) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let addr = addr.clone();
                scope.spawn(move || {
                    let client = RemoteStore::new(&addr);
                    match client.claim(NS_RUNS, "bench cold key", Duration::from_secs(10)) {
                        ClaimOutcome::Granted => {
                            // The "simulation": long enough that every
                            // other racer is parked in WAIT when the
                            // value publishes.
                            std::thread::sleep(Duration::from_millis(50));
                            client.save(NS_RUNS, "bench cold key", "the computed value");
                            (1u64, 0u64)
                        }
                        ClaimOutcome::Busy => {
                            let got =
                                client.wait_for(NS_RUNS, "bench cold key", Duration::from_secs(10));
                            assert_eq!(got.as_deref(), Some("the computed value"), "published");
                            (0, 1)
                        }
                        ClaimOutcome::Hit(_) => (0, 1),
                        ClaimOutcome::Unsupported => panic!("daemon supports claims"),
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("racer thread"))
            .fold((0, 0), |(g, s), (dg, ds)| (g + dg, s + ds))
    });
    let dedup_wall = dedup_start.elapsed().as_secs_f64();
    assert_eq!(granted, 1, "exactly one racer computes");
    assert_eq!(served, clients as u64 - 1, "every other racer is served");
    eprintln!("  dedup: {clients} racers, {granted} computed, {served} served from the claim");

    let maintenance = RemoteStore::new(&addr);
    let stats = maintenance.stats().expect("daemon stats");
    assert!(maintenance.shutdown(), "clean shutdown");
    server.wait();
    let _ = std::fs::remove_dir_all(&dir);

    let pass_json = |p: &Pass| {
        format!(
            "{{\"round_trips\": {}, \"requests\": {}, \"wall_seconds\": {:.6}, \
             \"keys_per_sec\": {:.0}}}",
            p.round_trips,
            p.requests,
            p.wall_seconds,
            p.keys_per_sec()
        )
    };
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"schema\": \"bench_store/v1\",");
    let _ = writeln!(json, "  \"git_rev\": \"{}\",", git_rev());
    let _ = writeln!(json, "  \"keys\": {keys},");
    let _ = writeln!(json, "  \"value_bytes\": {value_bytes},");
    let _ = writeln!(json, "  \"get\": {{");
    let _ = writeln!(json, "    \"serial\": {},", pass_json(&serial_get));
    let _ = writeln!(json, "    \"batched\": {},", pass_json(&batched_get));
    let _ = writeln!(json, "    \"round_trip_ratio\": {ratio:.1},");
    let _ = writeln!(
        json,
        "    \"speedup\": {:.2}",
        serial_get.wall_seconds / batched_get.wall_seconds
    );
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"put\": {{");
    let _ = writeln!(json, "    \"serial\": {},", pass_json(&serial_put));
    let _ = writeln!(json, "    \"batched\": {},", pass_json(&batched_put));
    let _ = writeln!(
        json,
        "    \"round_trip_ratio\": {:.1},",
        serial_put.round_trips as f64 / batched_put.round_trips.max(1) as f64
    );
    let _ = writeln!(
        json,
        "    \"speedup\": {:.2}",
        serial_put.wall_seconds / batched_put.wall_seconds
    );
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"framing\": {{");
    let _ = writeln!(json, "    \"binary_mget\": {},", pass_json(&binary_get));
    let _ = writeln!(json, "    \"text_mget\": {},", pass_json(&text_get));
    let _ = writeln!(
        json,
        "    \"binary_vs_text_speedup\": {:.2}",
        text_get.wall_seconds / binary_get.wall_seconds
    );
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"dedup\": {{");
    let _ = writeln!(json, "    \"racing_clients\": {clients},");
    let _ = writeln!(json, "    \"computed_once\": {granted},");
    let _ = writeln!(json, "    \"served_from_claim\": {served},");
    let _ = writeln!(json, "    \"wall_seconds\": {dedup_wall:.6},");
    let _ = writeln!(
        json,
        "    \"daemon_claims_granted\": {},",
        stats.claims_granted
    );
    let _ = writeln!(
        json,
        "    \"daemon_claims_expired\": {}",
        stats.claims_expired
    );
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"daemon\": {{");
    let _ = writeln!(json, "    \"batched_keys\": {},", stats.batched_keys);
    let _ = writeln!(json, "    \"max_batch\": {},", stats.max_batch);
    let _ = writeln!(json, "    \"pipeline_hwm\": {}", stats.pipeline_hwm);
    let _ = writeln!(json, "  }}");
    json.push_str("}\n");

    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    eprintln!(
        "bench_store: {:.0}x fewer round trips batched, results -> {out_path}",
        ratio
    );
}
