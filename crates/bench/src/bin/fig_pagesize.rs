//! Extension (paper §4.4): page-size sensitivity. "A larger page size
//! provides better coverage of the CFR, thus improving the iTLB energy
//! savings." The detailed results lived in the authors' tech report [19];
//! this bench regenerates the sweep.

use cfr_bench::{pct, scale_from_args};
use cfr_core::{Simulator, StrategyKind};
use cfr_types::{AddressingMode, PageGeometry};
use cfr_workload::{profiles, ProgramCache};

fn main() {
    let scale = scale_from_args();
    let programs = ProgramCache::new();
    println!("Page-size sweep — IA normalized iTLB energy (VI-PT, base = 100%)\n");
    let sizes = [1024u64, 4096, 16384, 65536];
    print!("{:<12}", "benchmark");
    for s in sizes {
        print!(" {:>9}", format!("{}K", s / 1024));
    }
    println!();
    for p in profiles::all() {
        print!("{:<12}", p.name);
        for bytes in sizes {
            let mut cfg = cfr_core::SimConfig::default_config();
            cfg.max_commits = scale.max_commits;
            cfg.seed = scale.seed;
            cfg.cpu.geometry = PageGeometry::new(bytes).expect("power of two");
            let base = Simulator::run_profile(
                &p,
                &programs,
                &cfg,
                StrategyKind::Base,
                AddressingMode::ViPt,
            );
            let ia =
                Simulator::run_profile(&p, &programs, &cfg, StrategyKind::Ia, AddressingMode::ViPt);
            print!(" {:>9}", pct(ia.energy_vs(&base)));
        }
        println!();
    }
    println!("\npaper shape: the normalized energy falls monotonically as pages grow");
    println!("(fewer page crossings => fewer CFR refills)");
}
