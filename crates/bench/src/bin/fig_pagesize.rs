//! Extension (paper §4.4): page-size sensitivity. "A larger page size
//! provides better coverage of the CFR, thus improving the iTLB energy
//! savings." The detailed results lived in the authors' tech report [19];
//! this bench regenerates the sweep.

use cfr_bench::{engine_with_store, pct, print_store_summary, scale_from_args};
use cfr_core::{RunKey, StrategyKind};
use cfr_types::AddressingMode;

fn main() {
    let scale = scale_from_args();
    let engine = engine_with_store();
    println!("Page-size sweep — IA normalized iTLB energy (VI-PT, base = 100%)\n");
    let sizes = [1024u64, 4096, 16384, 65536];
    print!("{:<12}", "benchmark");
    for s in sizes {
        print!(" {:>9}", format!("{}K", s / 1024));
    }
    println!();
    // One (base, IA) pair per benchmark per page size, planned as run
    // keys so the engine deduplicates, parallelizes, and persists them.
    let mut keys = Vec::new();
    for p in engine.profiles() {
        for bytes in sizes {
            for kind in [StrategyKind::Base, StrategyKind::Ia] {
                keys.push(
                    RunKey::new(p.name, &scale, kind, AddressingMode::ViPt).with_page_bytes(bytes),
                );
            }
        }
    }
    let reports = engine.run_many(&keys);
    let mut pairs = reports.chunks_exact(2);
    for p in engine.profiles() {
        print!("{:<12}", p.name);
        for _ in sizes {
            let pair = pairs.next().expect("one (base, IA) pair per size");
            let (base, ia) = (&pair[0], &pair[1]);
            print!(" {:>9}", pct(ia.energy_vs(base)));
        }
        println!();
    }
    println!("\npaper shape: the normalized energy falls monotonically as pages grow");
    println!("(fewer page crossings => fewer CFR refills)");
    print_store_summary(&engine);
}
