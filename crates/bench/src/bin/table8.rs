//! Reproduces **Table 8**: the PI-PT study — base PI-PT, PI-PT with IA,
//! base VI-PT, base VI-VT.

use cfr_bench::{engine_with_store, print_store_summary, scale_from_args};
use cfr_core::table8;

fn main() {
    let scale = scale_from_args();
    let engine = engine_with_store();
    let f = scale.to_paper_factor();
    println!("Table 8 — PI-PT iL1 study (E in mJ, C in millions of cycles; 250M scale)\n");
    println!(
        "{:<12} {:>18} {:>18} {:>18} {:>18}",
        "benchmark", "PI-PT base E/C", "PI-PT IA E/C", "VI-PT base E/C", "VI-VT base E/C"
    );
    for r in table8(&engine, &scale) {
        let p = |(e, c): (f64, u64)| format!("{:.2}/{:.1}", e * f, c as f64 * f / 1e6);
        println!(
            "{:<12} {:>18} {:>18} {:>18} {:>18}",
            r.name,
            p(r.pipt_base),
            p(r.pipt_ia),
            p(r.vipt_base),
            p(r.vivt_base)
        );
    }
    println!("\npaper shape: base PI-PT is much slower than VI-PT at equal energy;");
    println!("PI-PT+IA comes within ~6% of base VI-PT cycles at a fraction of the energy");
    print_store_summary(&engine);
}
