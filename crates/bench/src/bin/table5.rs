//! Reproduces **Table 5**: branch predictor accuracy.

use cfr_bench::{engine_with_store, print_store_summary, scale_from_args};
use cfr_core::table5;
use cfr_workload::profiles;

fn main() {
    let scale = scale_from_args();
    let engine = engine_with_store();
    println!("Table 5 — branch predictor accuracy (all branch kinds, pipeline run)\n");
    println!("{:<12} {:>10} {:>10}", "benchmark", "measured", "paper");
    for ((name, acc), p) in table5(&engine, &scale).iter().zip(profiles::all()) {
        println!(
            "{:<12} {:>9.2}% {:>9.2}%",
            name,
            acc * 100.0,
            p.paper.predictor_accuracy * 100.0
        );
    }
    print_store_summary(&engine);
}
