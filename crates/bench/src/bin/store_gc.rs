//! Maintenance tool for the persistent artifact store: reports total
//! size, per-shard occupancy, and per-namespace record counts, then runs
//! a garbage-collection/compaction pass under the environment's policy
//! (`CFR_STORE_MAX_BYTES` / `CFR_STORE_MAX_AGE`) and reports what it
//! dropped.
//!
//! ```sh
//! CFR_STORE_MAX_BYTES=4194304 cargo run -p cfr-bench --release --bin store_gc
//! ```
//!
//! With neither knob set the pass still compacts dead (superseded) bytes
//! out of the shard files; it just evicts nothing.
//!
//! With `CFR_STORE_ADDR` set the tool becomes a daemon client instead:
//! it prints the daemon's occupancy **and load counters** (active
//! connections, pipeline depth high-water mark, batched keys, claim
//! grants/expiries), asks the daemon for a GC pass over the wire, and
//! reports the result against the same byte budget.

use cfr_core::{
    ArtifactStore, GcPolicy, RemoteStore, NS_PROGRAMS, NS_RUNS, NS_WALKS, SHARD_COUNT,
    STORE_ADDR_ENV,
};

/// Maintenance against a running daemon: STATS (occupancy + load), then
/// GC, all over the protocol — the daemon owns the directory, so a local
/// open would be refused anyway.
fn remote_maintenance(addr: &str) {
    let client = RemoteStore::new(addr);
    let Some(stats) = client.stats() else {
        eprintln!("error: no daemon reachable at {addr}");
        std::process::exit(1);
    };
    println!("cfr-store maintenance — tcp://{addr}");
    let policy = GcPolicy::from_env();
    let fmt_bound = |bound: Option<u64>, unit: &str| {
        bound.map_or_else(|| "unbounded".to_string(), |v| format!("{v} {unit}"))
    };
    println!(
        "policy: max_bytes={} max_age={} (enforced by the daemon)",
        fmt_bound(policy.max_bytes, "bytes"),
        fmt_bound(policy.max_age_secs, "s"),
    );
    println!(
        "\npre-gc: {} live records ({} runs / {} walks / {} programs / {} traces), \
         {} live bytes in {} file bytes",
        stats.live_records,
        stats.runs,
        stats.walks,
        stats.programs,
        stats.traces,
        stats.live_bytes,
        stats.file_bytes,
    );
    println!(
        "load: {} active connections, pipeline depth hwm {}, \
         {} batched keys (max batch {}), claims {} granted / {} expired",
        stats.active_connections,
        stats.pipeline_hwm,
        stats.batched_keys,
        stats.max_batch,
        stats.claims_granted,
        stats.claims_expired,
    );

    let Some(report) = client.gc() else {
        eprintln!("error: daemon at {addr} dropped the GC request");
        std::process::exit(1);
    };
    println!(
        "gc: dropped {} dead bytes, evicted {} by age + {} by size, rewrote {} shards",
        report.dead_bytes_dropped, report.evicted_age, report.evicted_size, report.shards_rewritten,
    );
    // Post-GC file bytes come from a second STATS probe: the GC report
    // carries live bytes only. A daemon that vanishes between the GC
    // and this probe leaves the report unverifiable — fail loudly
    // rather than print a partial report that reads as a clean pass.
    let Some(post) = client.stats() else {
        eprintln!(
            "error: daemon at {addr} became unreachable after GC; \
             report incomplete, budget unverified"
        );
        std::process::exit(1);
    };
    let budget = match policy.max_bytes {
        Some(cap) if post.file_bytes <= cap => ", within budget",
        Some(_) => ", OVER budget",
        None => "",
    };
    println!(
        "post-gc: {} records, {} bytes{budget}",
        report.live_records, report.live_bytes,
    );
}

fn main() {
    if let Ok(addr) = std::env::var(STORE_ADDR_ENV) {
        remote_maintenance(&addr);
        return;
    }
    let store = match ArtifactStore::open_default() {
        Ok(store) => store,
        Err(err) => {
            eprintln!("error: cannot open the artifact store: {err}");
            std::process::exit(1);
        }
    };

    println!("cfr-store maintenance — {}", store.dir().display());
    let policy = store.policy();
    let fmt_bound = |bound: Option<u64>, unit: &str| {
        bound.map_or_else(|| "unbounded".to_string(), |v| format!("{v} {unit}"))
    };
    println!(
        "policy: max_bytes={} max_age={}",
        fmt_bound(policy.max_bytes, "bytes"),
        fmt_bound(policy.max_age_secs, "s"),
    );
    if store.migrated_records() > 0 {
        println!("migrated: {} v1 records", store.migrated_records());
    }

    println!(
        "\n{:<8} {:>12} {:>14} {:>12}",
        "shard", "file bytes", "live records", "live bytes"
    );
    for occ in store.shard_occupancy() {
        println!(
            "{:<8} {:>12} {:>14} {:>12}",
            format!("{:02}", occ.shard),
            occ.file_bytes,
            occ.live_records,
            occ.live_bytes
        );
    }
    println!(
        "\npre-gc: {} live records ({} runs / {} walks / {} programs), \
         {} live bytes in {} file bytes across {} shards",
        store.live_records(),
        store.namespace_records(NS_RUNS),
        store.namespace_records(NS_WALKS),
        store.namespace_records(NS_PROGRAMS),
        store.live_bytes(),
        store.file_bytes(),
        SHARD_COUNT,
    );

    let report = store.gc();
    println!(
        "gc: dropped {} dead bytes, evicted {} by age + {} by size, rewrote {} shards",
        report.dead_bytes_dropped, report.evicted_age, report.evicted_size, report.shards_rewritten,
    );
    let budget = match policy.max_bytes {
        Some(cap) if store.file_bytes() <= cap => ", within budget",
        Some(_) => ", OVER budget",
        None => "",
    };
    println!(
        "post-gc: {} records, {} bytes{budget}",
        report.live_records, report.live_bytes,
    );
}
