//! Extension (paper §3.2, quantified): context-switch frequency curves.
//! Energy and CPI versus scheduling quantum for ASID-tagged vs
//! flush-on-switch TLBs, over a mixed-page-size program set (two 4 KB
//! processes and two 2 MB processes) — the superpage half of the mix
//! crosses pages far less often, so its CFR survives longer between
//! switches.

use cfr_bench::{engine_with_store, print_store_summary, scale_from_args};
use cfr_core::{ScenarioConfig, ScenarioProc, StrategyKind, TlbMode};
use cfr_types::AddressingMode;
use cfr_workload::profiles;

const SWITCH_PENALTY: u32 = 400;
const SHOOTDOWN_PER_ENTRY: u32 = 2;

fn main() {
    let scale = scale_from_args();
    let engine = engine_with_store();
    let names = profiles::mix(scale.seed, 4);
    // Half the mix runs on 2 MB superpages: the 4K/2M page-mix axis.
    let procs: Vec<ScenarioProc> = names
        .iter()
        .enumerate()
        .map(|(i, n)| {
            let p = ScenarioProc::new(n);
            if i % 2 == 1 {
                p.with_page_bytes(2 * 1024 * 1024)
            } else {
                p
            }
        })
        .collect();
    println!("Context-switch sweep — 4-program 4K/2M mix, IA strategy, VI-PT");
    println!(
        "mix: {}\n",
        procs
            .iter()
            .map(|p| match p.page_bytes {
                Some(_) => format!("{} (2M)", p.profile),
                None => format!("{} (4K)", p.profile),
            })
            .collect::<Vec<_>>()
            .join(", ")
    );

    let quanta = [5_000u64, 20_000, 80_000, 320_000];
    let modes = [TlbMode::Asid, TlbMode::Flush];
    let mut cfgs: Vec<ScenarioConfig> = Vec::new();
    for &quantum in &quanta {
        for &tlb_mode in &modes {
            let mut cfg =
                ScenarioConfig::new(procs.clone(), scale, StrategyKind::Ia, AddressingMode::ViPt);
            cfg.quantum = quantum;
            cfg.tlb_mode = tlb_mode;
            cfg.asid_count = 16;
            cfg.switch_penalty = SWITCH_PENALTY;
            cfg.shootdown_per_entry = SHOOTDOWN_PER_ENTRY;
            cfgs.push(cfg);
        }
    }
    let reports = engine.run_scenarios(&cfgs);

    println!(
        "{:>9} {:>10} {:>11} {:>12} {:>13}",
        "quantum", "asid-cpi", "flush-cpi", "asid-mJ", "flush-mJ"
    );
    for (qi, &quantum) in quanta.iter().enumerate() {
        let asid = &reports[qi * 2];
        let flush = &reports[qi * 2 + 1];
        println!(
            "{:>9} {:>10.3} {:>11.3} {:>12.4} {:>13.4}",
            quantum,
            asid.cpi(),
            flush.cpi(),
            asid.machine.itlb_energy_mj(),
            flush.machine.itlb_energy_mj(),
        );
    }
    println!("\nshape: both curves improve as the quantum grows (fewer switches);");
    println!("the flush curve sits above the ASID curve at every point");
    print_store_summary(&engine);
}
