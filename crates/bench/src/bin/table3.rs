//! Reproduces **Table 3**: dynamic iTLB lookups for SoCA/SoLA/IA, split
//! into the BOUNDARY and BRANCH cases (VI-PT).

use cfr_bench::{engine_with_store, print_store_summary, scale_from_args};
use cfr_core::table3;

fn main() {
    let scale = scale_from_args();
    let engine = engine_with_store();
    println!(
        "Table 3 — dynamic iTLB lookups by cause (VI-PT), at {} commits/run",
        scale.max_commits
    );
    println!(
        "paper shape: SoCA >> SoLA > IA in the BRANCH column; BOUNDARY identical across schemes\n"
    );
    println!(
        "{:<12} {:>24} {:>24} {:>24}",
        "benchmark", "SoCA bnd/branch", "SoLA bnd/branch", "IA bnd/branch"
    );
    for r in table3(&engine, &scale) {
        print!("{:<12}", r.name);
        for (b, br) in r.lookups {
            let pctb = 100.0 * b as f64 / (b + br).max(1) as f64;
            print!(" {:>10}/{:<8}({:>4.1}%)", b, br, pctb);
        }
        println!();
    }
    print_store_summary(&engine);
}
