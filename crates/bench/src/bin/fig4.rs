//! Reproduces **Figure 4**: normalized iTLB energy of HoA/SoCA/SoLA/IA/OPT
//! relative to base, for VI-PT (top panel) and VI-VT (bottom panel).

use cfr_bench::{engine_with_store, pct, print_store_summary, scale_from_args};
use cfr_core::{fig4, FIG4_SCHEMES};
use cfr_types::AddressingMode;

fn main() {
    let scale = scale_from_args();
    let engine = engine_with_store();
    let rows = fig4(&engine, &scale);
    for mode in [AddressingMode::ViPt, AddressingMode::ViVt] {
        println!("\nFigure 4 ({mode}) — normalized iTLB energy (base = 100%)");
        print!("{:<12}", "benchmark");
        for k in FIG4_SCHEMES {
            print!(" {:>9}", k.name());
        }
        println!();
        let mut avg = [0.0f64; 5];
        let mode_rows: Vec<_> = rows.iter().filter(|r| r.mode == mode).collect();
        for r in &mode_rows {
            print!("{:<12}", r.name);
            for (i, e) in r.energy.iter().enumerate() {
                avg[i] += e;
                print!(" {:>9}", pct(*e));
            }
            println!();
        }
        print!("{:<12}", "AVERAGE");
        for a in avg {
            print!(" {:>9}", pct(a / mode_rows.len() as f64));
        }
        println!();
        let paper = match mode {
            AddressingMode::ViPt => [5.69, 12.24, 5.01, 3.82, 3.20],
            _ => [15.23, 36.83, 16.39, 14.04, 12.74],
        };
        print!("{:<12}", "paper avg");
        for p in paper {
            print!(" {:>8.2}%", p);
        }
        println!();
    }
    print_store_summary(&engine);
}
