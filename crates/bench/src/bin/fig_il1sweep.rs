//! Extension (paper §4.4): iL1-configuration sensitivity for VI-VT. "The
//! benefits of IA are more significant at smaller or less associative iL1
//! configurations, since these incur more misses."

use cfr_bench::{engine_with_store, pct, print_store_summary, scale_from_args};
use cfr_core::{RunKey, StrategyKind};
use cfr_types::AddressingMode;

fn main() {
    let scale = scale_from_args();
    let engine = engine_with_store();
    println!("iL1 sweep — IA normalized cycles and energy (VI-VT, base = 100%)\n");
    let sizes = [2048u64, 4096, 8192, 16384];
    println!(
        "{:<12} {:>24} {:>24} {:>24} {:>24}",
        "benchmark", "2K cyc/E", "4K cyc/E", "8K cyc/E", "16K cyc/E"
    );
    // One (base, IA) pair per benchmark per iL1 capacity, planned as run
    // keys so the engine deduplicates, parallelizes, and persists them.
    let mut keys = Vec::new();
    for p in engine.profiles() {
        for bytes in sizes {
            for kind in [StrategyKind::Base, StrategyKind::Ia] {
                keys.push(
                    RunKey::new(p.name, &scale, kind, AddressingMode::ViVt).with_il1_bytes(bytes),
                );
            }
        }
    }
    let reports = engine.run_many(&keys);
    let mut pairs = reports.chunks_exact(2);
    for p in engine.profiles() {
        print!("{:<12}", p.name);
        for _ in sizes {
            let pair = pairs.next().expect("one (base, IA) pair per size");
            let (base, ia) = (&pair[0], &pair[1]);
            print!(
                " {:>11}/{:<12}",
                pct(ia.cycles_vs(base)),
                pct(ia.energy_vs(base))
            );
        }
        println!();
    }
    println!("\npaper shape: the cycle savings (100% - value) grow as the iL1 shrinks");
    print_store_summary(&engine);
}
