//! Extension (paper §4.4): iL1-configuration sensitivity for VI-VT. "The
//! benefits of IA are more significant at smaller or less associative iL1
//! configurations, since these incur more misses."

use cfr_bench::{pct, scale_from_args};
use cfr_core::{Simulator, StrategyKind};
use cfr_types::AddressingMode;
use cfr_workload::{profiles, ProgramCache};

fn main() {
    let scale = scale_from_args();
    let programs = ProgramCache::new();
    println!("iL1 sweep — IA normalized cycles and energy (VI-VT, base = 100%)\n");
    let sizes = [2048u64, 4096, 8192, 16384];
    println!(
        "{:<12} {:>24} {:>24} {:>24} {:>24}",
        "benchmark", "2K cyc/E", "4K cyc/E", "8K cyc/E", "16K cyc/E"
    );
    for p in profiles::all() {
        print!("{:<12}", p.name);
        for bytes in sizes {
            let mut cfg = cfr_core::SimConfig::default_config();
            cfg.max_commits = scale.max_commits;
            cfg.seed = scale.seed;
            cfg.cpu.il1.organization.size_bytes = bytes;
            let base = Simulator::run_profile(
                &p,
                &programs,
                &cfg,
                StrategyKind::Base,
                AddressingMode::ViVt,
            );
            let ia =
                Simulator::run_profile(&p, &programs, &cfg, StrategyKind::Ia, AddressingMode::ViVt);
            print!(
                " {:>11}/{:<12}",
                pct(ia.cycles_vs(&base)),
                pct(ia.energy_vs(&base))
            );
        }
        println!();
    }
    println!("\npaper shape: the cycle savings (100% - value) grow as the iL1 shrinks");
}
