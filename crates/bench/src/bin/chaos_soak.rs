//! Chaos soak: runs `all_experiments` against a store daemon reached
//! through a fault-injecting TCP proxy, under a fault-injecting client
//! backend, and proves three invariants per seed:
//!
//! 1. **Byte identity** — stdout is byte-for-byte identical to a
//!    fault-free reference run. Every injected miss, torn append,
//!    corrupt record, dropped connection, and stalled frame must
//!    degrade to recomputation, never to different results.
//! 2. **No hangs** — the run finishes inside `--deadline` seconds or
//!    the child is killed and the soak fails.
//! 3. **Crash-safe recovery** — after the run, both the daemon's and
//!    the client's store directories reopen with **zero** corrupt
//!    surviving records: torn tails are resynced past, and everything
//!    the index still points at reads back byte-for-byte.
//!
//! ```sh
//! cargo run -p cfr-bench --release --bin chaos_soak -- \
//!     --commits 20000 --seeds 101,202,303 --deadline 300
//! ```
//!
//! The fault schedules are pure functions of the seed, so a failing
//! seed replays exactly.

use std::io::Read;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cfr_types::{
    ArtifactStore, ChaosProxy, FaultPlan, FsyncPolicy, GcPolicy, ServerConfig, StoreServer,
    CHAOS_PLAN_ENV, CHAOS_SEED_ENV, CLAIM_LEASE_ENV, STORE_ADDR_ENV, STORE_DIR_ENV,
    STORE_FSYNC_ENV, STORE_MAX_AGE_ENV, STORE_MAX_BYTES_ENV,
};

struct Args {
    commits: u64,
    seeds: Vec<u64>,
    deadline: u64,
    report: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        commits: 20_000,
        seeds: vec![101, 202, 303],
        deadline: 600,
        report: "chaos_soak_report.txt".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let (flag, inline) = match arg.split_once('=') {
            Some((f, v)) => (f.to_string(), Some(v.to_string())),
            None => (arg.clone(), None),
        };
        let mut value_of = |flag: &str| -> String {
            inline.clone().or_else(|| it.next()).unwrap_or_else(|| {
                eprintln!("error: {flag} requires a value");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--commits" => {
                args.commits = value_of("--commits").parse().unwrap_or_else(|_| {
                    eprintln!("error: --commits expects a count");
                    std::process::exit(2);
                });
            }
            "--seeds" => {
                args.seeds = value_of("--seeds")
                    .split(',')
                    .filter(|s| !s.trim().is_empty())
                    .map(|s| {
                        s.trim().parse().unwrap_or_else(|_| {
                            eprintln!("error: --seeds expects comma-separated integers");
                            std::process::exit(2);
                        })
                    })
                    .collect();
            }
            "--deadline" => {
                args.deadline = value_of("--deadline").parse().unwrap_or_else(|_| {
                    eprintln!("error: --deadline expects seconds");
                    std::process::exit(2);
                });
            }
            "--report" => args.report = value_of("--report"),
            other => {
                eprintln!("error: unknown argument {other:?}");
                eprintln!(
                    "usage: chaos_soak [--commits N] [--seeds A,B,C] [--deadline SECS] \
                     [--report PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    args
}

/// The `all_experiments` binary lives next to this one.
fn experiments_bin() -> PathBuf {
    let mut path = std::env::current_exe().expect("current_exe");
    path.set_file_name("all_experiments");
    if !path.exists() {
        eprintln!(
            "error: {} not found; build it first (cargo build -p cfr-bench --bins)",
            path.display()
        );
        std::process::exit(2);
    }
    path
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cfr-chaos-soak-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

struct RunOutcome {
    stdout: Vec<u8>,
    success: bool,
    timed_out: bool,
    elapsed: Duration,
}

/// Runs a child to completion or kills it at the deadline — a hang is
/// a failure with a diagnosis, never a hung soak.
fn run_with_deadline(mut child: Child, deadline: Duration) -> RunOutcome {
    let t0 = Instant::now();
    // Drain stdout on a thread so a chatty child can't dead-lock on a
    // full pipe while we poll for exit.
    let mut stdout_pipe = child.stdout.take().expect("stdout piped");
    let reader = std::thread::spawn(move || {
        let mut buf = Vec::new();
        let _ = stdout_pipe.read_to_end(&mut buf);
        buf
    });
    let mut timed_out = false;
    let status = loop {
        match child.try_wait().expect("try_wait") {
            Some(status) => break status,
            None if t0.elapsed() > deadline => {
                timed_out = true;
                let _ = child.kill();
                break child.wait().expect("wait after kill");
            }
            None => std::thread::sleep(Duration::from_millis(100)),
        }
    };
    RunOutcome {
        stdout: reader.join().expect("stdout reader"),
        success: status.success() && !timed_out,
        timed_out,
        elapsed: t0.elapsed(),
    }
}

/// A command with every store/chaos knob scrubbed, so the soak is
/// immune to whatever the invoking shell exported.
fn base_command(bin: &PathBuf, commits: u64, store_dir: &PathBuf) -> Command {
    let mut cmd = Command::new(bin);
    cmd.arg("--commits")
        .arg(commits.to_string())
        .env_remove(STORE_ADDR_ENV)
        .env_remove(CHAOS_SEED_ENV)
        .env_remove(CHAOS_PLAN_ENV)
        .env_remove(STORE_FSYNC_ENV)
        .env_remove(STORE_MAX_BYTES_ENV)
        .env_remove(STORE_MAX_AGE_ENV)
        .env(STORE_DIR_ENV, store_dir)
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    cmd
}

/// Reopens a store directory after the fact and verifies every record
/// the index points at reads back byte-for-byte. Returns
/// `(readable, corrupt)`.
fn recover_and_verify(dir: &PathBuf) -> (u64, u64) {
    match ArtifactStore::open(dir, GcPolicy::unbounded()) {
        Ok(store) => store.verify_records(),
        Err(err) => {
            eprintln!("error: cannot reopen {} for recovery: {err}", dir.display());
            (0, u64::MAX)
        }
    }
}

#[allow(clippy::too_many_lines)]
fn main() {
    let args = parse_args();
    let bin = experiments_bin();
    let deadline = Duration::from_secs(args.deadline);
    let mut report = Vec::<String>::new();
    let mut all_ok = true;

    // ---- Reference: one fault-free run fixes the expected bytes.
    let ref_dir = temp_dir("reference");
    println!(
        "chaos_soak: reference run ({} commits, fault-free)",
        args.commits
    );
    let child = base_command(&bin, args.commits, &ref_dir)
        .spawn()
        .expect("spawn reference run");
    let reference = run_with_deadline(child, deadline);
    let _ = std::fs::remove_dir_all(&ref_dir);
    if !reference.success {
        eprintln!(
            "error: reference run failed (timed out: {})",
            reference.timed_out
        );
        std::process::exit(1);
    }
    report.push(format!(
        "reference: {} stdout bytes in {:.1}s",
        reference.stdout.len(),
        reference.elapsed.as_secs_f64()
    ));

    // ---- Per seed: daemon + chaos proxy + chaos client backend.
    for &seed in &args.seeds {
        let daemon_dir = temp_dir(&format!("daemon-{seed}"));
        let client_dir = temp_dir(&format!("client-{seed}"));
        let store = match ArtifactStore::open(&daemon_dir, GcPolicy::unbounded()) {
            Ok(store) => Arc::new(store.with_fsync(FsyncPolicy::Commit)),
            Err(err) => {
                eprintln!("error: cannot open daemon store for seed {seed}: {err}");
                all_ok = false;
                continue;
            }
        };
        let server = match StoreServer::bind(store, "127.0.0.1:0", ServerConfig::default()) {
            Ok(server) => server,
            Err(err) => {
                eprintln!("error: cannot bind daemon for seed {seed}: {err}");
                all_ok = false;
                continue;
            }
        };
        let proxy = match ChaosProxy::start(server.addr(), FaultPlan::new(seed)) {
            Ok(proxy) => proxy,
            Err(err) => {
                eprintln!("error: cannot start chaos proxy for seed {seed}: {err}");
                server.shutdown();
                all_ok = false;
                continue;
            }
        };
        println!(
            "chaos_soak: seed {seed} — daemon {}, proxy {}",
            server.addr(),
            proxy.addr()
        );
        let child = base_command(&bin, args.commits, &client_dir)
            .env(STORE_ADDR_ENV, proxy.addr().to_string())
            .env(CHAOS_SEED_ENV, seed.to_string())
            // Short leases keep claim stalls inside the deadline when
            // an injected fault kills a claim holder's connection.
            .env(CLAIM_LEASE_ENV, "2000")
            .spawn()
            .expect("spawn chaos run");
        let outcome = run_with_deadline(child, deadline);
        let mut proxy = proxy;
        proxy.stop();
        let injected = proxy.injected_faults();
        server.shutdown();

        // Recovery proof: both directories reopen with zero corrupt
        // survivors — whatever the injected faults tore is resynced
        // past, never served.
        let (daemon_ok, daemon_corrupt) = recover_and_verify(&daemon_dir);
        let (client_ok, client_corrupt) = recover_and_verify(&client_dir);

        let identical = outcome.stdout == reference.stdout;
        let pass = outcome.success
            && !outcome.timed_out
            && identical
            && daemon_corrupt == 0
            && client_corrupt == 0;
        all_ok &= pass;
        let line = format!(
            "seed {seed}: {} — {:.1}s, {} proxy faults injected, stdout {} \
             ({} vs {} bytes), hang: {}, daemon records {daemon_ok} ok / \
             {daemon_corrupt} corrupt, client records {client_ok} ok / \
             {client_corrupt} corrupt",
            if pass { "PASS" } else { "FAIL" },
            outcome.elapsed.as_secs_f64(),
            injected,
            if identical { "identical" } else { "DIVERGED" },
            outcome.stdout.len(),
            reference.stdout.len(),
            outcome.timed_out,
        );
        println!("chaos_soak: {line}");
        report.push(line);
        let _ = std::fs::remove_dir_all(&daemon_dir);
        let _ = std::fs::remove_dir_all(&client_dir);
    }

    let verdict = if all_ok { "PASS" } else { "FAIL" };
    report.push(format!(
        "verdict: {verdict} across {} seeds at {} commits",
        args.seeds.len(),
        args.commits
    ));
    let body = report.join("\n") + "\n";
    if let Err(err) = std::fs::write(&args.report, &body) {
        eprintln!("error: cannot write {}: {err}", args.report);
    }
    println!("chaos_soak: verdict {verdict} (report: {})", args.report);
    if !all_ok {
        std::process::exit(1);
    }
}
