//! Reproduces **Table 6**: energy (VI-PT and VI-VT) and execution cycles
//! (VI-VT) for Base/OPT/IA across four monolithic iTLB configurations.

use cfr_bench::{engine_with_store, print_store_summary, scale_from_args};
use cfr_core::table6;

fn main() {
    let scale = scale_from_args();
    let engine = engine_with_store();
    let f = scale.to_paper_factor();
    println!("Table 6 — iTLB configuration sweep (energies in mJ at 250M-instruction scale)");
    println!("paper shape: OPT/IA percentages shrink as the iTLB grows; VI-VT cycles for OPT/IA");
    println!("approach base as the iTLB grows (misses stop mattering)\n");
    println!(
        "{:<7} {:<12} {:>30} {:>30} {:>33}",
        "iTLB",
        "benchmark",
        "VI-PT E base/OPT/IA",
        "VI-VT E base/OPT/IA",
        "VI-VT cycles(M) base/OPT/IA"
    );
    for r in table6(&engine, &scale) {
        let e = r.vipt_energy_mj;
        let v = r.vivt_energy_mj;
        let c = r.vivt_cycles;
        println!(
            "{:<7} {:<12} {:>9.2}/{:>6.2} ({:>4.1}%)/{:>6.2} ({:>4.1}%) {:>8.3}/{:>6.3}/{:>6.3} {:>9.1}/{:>8.1}/{:>8.1}",
            r.itlb,
            r.name,
            e[0] * f,
            e[1] * f,
            100.0 * e[1] / e[0],
            e[2] * f,
            100.0 * e[2] / e[0],
            v[0] * f,
            v[1] * f,
            v[2] * f,
            c[0] as f64 * f / 1e6,
            c[1] as f64 * f / 1e6,
            c[2] as f64 * f / 1e6,
        );
    }
    print_store_summary(&engine);
}
