//! # cfr-bench
//!
//! The reproduction harness: one binary per table/figure of the paper's
//! evaluation (see `DESIGN.md` §4 for the experiment index), plus criterion
//! microbenchmarks of the substrate (not auto-discovered offline, see
//! `vendor/README.md`).
//!
//! Run an experiment with, e.g.:
//!
//! ```sh
//! cargo run -p cfr-bench --release --bin fig4 -- --commits 1000000
//! ```
//!
//! Every binary accepts `--commits N` (committed instructions per run;
//! default 1,000,000) and `--seed N` (walker seed, default `0x5EED`), and
//! prints both our measured values and the paper's published numbers side
//! by side. All of them drive their runs through one shared
//! [`cfr_core::Engine`], so overlapping configurations within a binary are
//! simulated once, in parallel.

use cfr_core::{Engine, ExperimentScale};

/// Parses `--commits N` / `--seed N` (also the `--flag=N` form) from an
/// argument stream (exclusive of the program name) into an experiment
/// scale.
///
/// # Errors
///
/// Returns a message naming the offending argument when a value is
/// missing or not a positive integer, or when the argument is not a
/// recognized flag — a misspelled or half-typed flag must abort the
/// experiment, not silently run at the default scale.
pub fn try_scale_from_args<I>(args: I) -> Result<ExperimentScale, String>
where
    I: IntoIterator<Item = String>,
{
    let mut scale = ExperimentScale::full();
    scale.max_commits = 1_000_000;
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        let (flag, inline_value) = match arg.split_once('=') {
            Some((flag, value)) => (flag.to_string(), Some(value.to_string())),
            None => (arg, None),
        };
        let mut value_of = |flag: &str| -> Result<u64, String> {
            let value = inline_value
                .clone()
                .or_else(|| args.next())
                .ok_or_else(|| format!("{flag} requires a value"))?;
            value
                .parse::<u64>()
                .map_err(|_| format!("{flag} expects an unsigned integer, got {value:?}"))
        };
        match flag.as_str() {
            "--commits" => {
                let n = value_of("--commits")?;
                if n == 0 {
                    return Err("--commits must be positive".into());
                }
                scale.max_commits = n;
            }
            "--seed" => scale.seed = value_of("--seed")?,
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(scale)
}

/// Parses the process arguments into an experiment scale, exiting with a
/// diagnostic on malformed input.
#[must_use]
pub fn scale_from_args() -> ExperimentScale {
    match try_scale_from_args(std::env::args().skip(1)) {
        Ok(scale) => scale,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("usage: --commits N (committed instructions) --seed N (walker seed)");
            std::process::exit(2);
        }
    }
}

/// Formats a ratio as the percentage style the paper's tables use.
#[must_use]
pub fn pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

/// Builds the engine every experiment binary shares, backed by the
/// machine-wide persistent artifact store (`$CFR_STORE_DIR`, default
/// `target/cfr-store`): a run simulated, a program generated, or a walk
/// measured by *any* binary — or an earlier invocation of this one — is
/// served from disk instead of being recomputed. If the store directory
/// cannot be created the binary still runs, just without cross-process
/// caching.
#[must_use]
pub fn engine_with_store() -> Engine {
    Engine::with_default_store()
}

/// Prints the shared per-namespace `store: runs X warm / Y cold; …`
/// accounting line on stderr (stderr, so stdout stays a byte-stable
/// document that can be diffed across cold and warm invocations).
pub fn print_store_summary(engine: &Engine) {
    eprintln!("{}", engine.summary_line());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<ExperimentScale, String> {
        try_scale_from_args(args.iter().map(ToString::to_string))
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.1234), "12.34%");
    }

    #[test]
    fn default_scale() {
        let s = parse(&[]).unwrap();
        assert_eq!(s.max_commits, 1_000_000);
        assert_eq!(s.seed, 0x5EED);
    }

    #[test]
    fn commits_and_seed_parse() {
        let s = parse(&["--commits", "120000", "--seed", "7"]).unwrap();
        assert_eq!(s.max_commits, 120_000);
        assert_eq!(s.seed, 7);
    }

    #[test]
    fn malformed_commits_is_an_error() {
        assert!(parse(&["--commits", "12k"]).is_err());
        assert!(parse(&["--commits"]).is_err());
        assert!(parse(&["--commits", "0"]).is_err());
        assert!(parse(&["--commits", "-5"]).is_err());
    }

    #[test]
    fn malformed_seed_is_an_error() {
        assert!(parse(&["--seed", "beef"]).is_err());
        assert!(parse(&["--seed"]).is_err());
    }

    #[test]
    fn equals_form_parses() {
        let s = parse(&["--commits=120000", "--seed=9"]).unwrap();
        assert_eq!(s.max_commits, 120_000);
        assert_eq!(s.seed, 9);
        assert!(parse(&["--commits="]).is_err());
        assert!(parse(&["--commits=abc"]).is_err());
    }

    #[test]
    fn unknown_arguments_are_errors() {
        assert!(parse(&["--commit", "5"]).is_err(), "typo'd flag");
        assert!(parse(&["--verbose"]).is_err());
        assert!(parse(&["extra"]).is_err());
        let err = parse(&["--comits", "5"]).unwrap_err();
        assert!(err.contains("--comits"), "error names the argument: {err}");
    }
}
