//! # cfr-bench
//!
//! The reproduction harness: one binary per table/figure of the paper's
//! evaluation (see `DESIGN.md` §4 for the experiment index), plus criterion
//! microbenchmarks of the substrate.
//!
//! Run an experiment with, e.g.:
//!
//! ```sh
//! cargo run -p cfr-bench --release --bin fig4 -- --commits 1000000
//! ```
//!
//! Every binary accepts `--commits N` (committed instructions per run;
//! default 1,000,000) and prints both our measured values and the paper's
//! published numbers side by side.

use cfr_core::ExperimentScale;

/// Parses `--commits N` from the command line into an experiment scale.
#[must_use]
pub fn scale_from_args() -> ExperimentScale {
    let mut scale = ExperimentScale::full();
    scale.max_commits = 1_000_000;
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--commits") {
        if let Some(n) = args.get(i + 1).and_then(|s| s.parse().ok()) {
            scale.max_commits = n;
        }
    }
    scale
}

/// Formats a ratio as the percentage style the paper's tables use.
#[must_use]
pub fn pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.1234), "12.34%");
    }

    #[test]
    fn default_scale() {
        let s = scale_from_args();
        assert!(s.max_commits > 0);
    }
}
