//! Execution backends: the pipeline's view of the program being run.
//!
//! The out-of-order core needs two things from a workload: static layout
//! queries (slot ↔ address mapping, per-slot decode metadata) and the
//! architectural oracle (`step`). [`ExecutionBackend`] abstracts both, so
//! the same pipeline runs over either representation:
//!
//! - [`InterpBackend`] — the reference model: reads each [`LaidProgram`]
//!   slot's `Instruction` on every fetch and steps the original
//!   [`Walker`]. Decode metadata (class, operands, branch kind, page
//!   number) is re-derived per fetch.
//! - [`CompiledBackend`] — the fast path: runs a [`CompiledTrace`] whose
//!   per-slot metadata was pre-decoded once at compile time, stepping the
//!   trace's own [`TraceWalker`].
//!
//! Both walkers are driven by the same `SplitMix64` stream in the same
//! order, so the two backends are *byte-identical*: every statistic and
//! every energy figure must match exactly (the compiled-vs-interpreter
//! pipeline test and the repo's golden tests enforce this).

use cfr_mem::{Cache, Tlb};
use cfr_types::{VirtAddr, Vpn};
use cfr_workload::{CompiledTrace, DecodedInstr, LaidProgram, StepInfo, TraceWalker, Walker};

use crate::translate::FetchTranslator;

/// Batches the *independent* metadata probes one simulated access issues.
///
/// The pipeline touches several unrelated structures per event — a fetch
/// probes the iL1 tag array and the strategy's iTLB; a data reference
/// probes the dL1 and the dTLB. Each probe's first host-memory load is an
/// all-but-guaranteed cache miss into a multi-megabyte metadata arena, and
/// running the lookups back to back serializes those misses. `LookupBatch`
/// issues a host prefetch for every structure in the batch *before* the
/// first lookup runs, so the misses overlap instead.
///
/// Purely a host-side performance hint: every method takes `&self`
/// structures, reads nothing architecturally visible, and changes no
/// simulator state — modeled output is byte-identical with or without the
/// batch (the golden suite enforces this).
///
/// ```
/// # use cfr_cpu::LookupBatch;
/// # use cfr_mem::{Cache, CacheConfig};
/// # let il1 = Cache::new(CacheConfig::default_il1());
/// LookupBatch::begin().cache(&il1, 0x40_0000);
/// // ... il1.access(0x40_0000, ...) now starts from warmer host caches.
/// ```
#[derive(Debug)]
pub struct LookupBatch;

impl LookupBatch {
    /// Starts an empty batch.
    #[inline]
    pub fn begin() -> Self {
        Self
    }

    /// Adds a cache tag-array probe for `addr` to the batch.
    #[inline]
    pub fn cache(self, cache: &Cache, addr: u64) -> Self {
        cache.prefetch(addr);
        self
    }

    /// Adds a TLB key-array probe for `vpn` to the batch.
    #[inline]
    pub fn tlb(self, tlb: &Tlb, vpn: Vpn) -> Self {
        tlb.prefetch(vpn);
        self
    }

    /// Adds the translator's iTLB probe for `pc` to the batch (a no-op for
    /// strategies that keep no iTLB, e.g. [`crate::NullTranslator`]).
    #[inline]
    pub fn translation<T: FetchTranslator + ?Sized>(self, translator: &T, pc: VirtAddr) -> Self {
        translator.prefetch_translation(pc);
        self
    }
}

/// A program representation plus its architectural oracle.
///
/// Static queries (`addr_of`, `decoded`, …) may be called for any slot —
/// the fetch engine runs down predicted wrong paths — while [`step`]
/// advances the architectural (right-path) walker only.
///
/// [`step`]: ExecutionBackend::step
pub trait ExecutionBackend {
    /// Number of instruction slots in the program.
    fn slot_count(&self) -> usize;

    /// Virtual address of slot `slot`.
    fn addr_of(&self, slot: usize) -> VirtAddr;

    /// Slot index at `addr`, if it names an instruction.
    fn slot_of(&self, addr: VirtAddr) -> Option<usize>;

    /// Virtual page number of slot `slot`'s address.
    fn page_of(&self, slot: usize) -> u64;

    /// Decode metadata for slot `slot`.
    fn decoded(&self, slot: usize) -> DecodedInstr;

    /// The program's entry slot.
    fn entry_slot(&self) -> usize;

    /// Executes one architectural instruction.
    fn step(&mut self) -> StepInfo;

    /// Slot the architectural walker will execute next.
    fn current_slot(&self) -> usize;
}

/// The reference backend: per-fetch decode straight out of the
/// [`LaidProgram`]'s instruction slots, stepped by the original
/// [`Walker`].
pub struct InterpBackend<'p> {
    prog: &'p LaidProgram,
    walker: Walker<'p>,
}

impl<'p> InterpBackend<'p> {
    /// Builds the backend over a laid-out program; `seed` drives the
    /// architectural walker.
    #[must_use]
    pub fn new(prog: &'p LaidProgram, seed: u64) -> Self {
        Self {
            prog,
            walker: Walker::new(prog, seed),
        }
    }
}

impl ExecutionBackend for InterpBackend<'_> {
    #[inline]
    fn slot_count(&self) -> usize {
        self.prog.slots.len()
    }

    #[inline]
    fn addr_of(&self, slot: usize) -> VirtAddr {
        self.prog.addr_of(slot)
    }

    #[inline]
    fn slot_of(&self, addr: VirtAddr) -> Option<usize> {
        self.prog.slot_of(addr)
    }

    #[inline]
    fn page_of(&self, slot: usize) -> u64 {
        self.prog.geom.vpn(self.prog.addr_of(slot)).raw()
    }

    #[inline]
    fn decoded(&self, slot: usize) -> DecodedInstr {
        let instr = &self.prog.slots[slot].instr;
        let spec = instr.branch.as_ref();
        DecodedInstr {
            class: instr.class,
            srcs: instr.srcs,
            dst: instr.dst,
            latency: instr.latency(),
            branch: spec.map(|s| s.kind),
            in_page_hint: spec.is_some_and(|s| s.in_page_hint),
            boundary: spec.is_some_and(|s| s.boundary),
            page: self.page_of(slot),
        }
    }

    #[inline]
    fn entry_slot(&self) -> usize {
        self.prog.entry_slot()
    }

    #[inline]
    fn step(&mut self) -> StepInfo {
        self.walker.step()
    }

    #[inline]
    fn current_slot(&self) -> usize {
        self.walker.current_slot()
    }
}

/// The pre-decoded backend: flat per-slot metadata copied straight out of
/// a [`CompiledTrace`], stepped by its [`TraceWalker`].
pub struct CompiledBackend<'t> {
    trace: &'t CompiledTrace,
    walker: TraceWalker<'t>,
}

impl<'t> CompiledBackend<'t> {
    /// Builds the backend over a compiled trace; `seed` drives the
    /// architectural walker.
    #[must_use]
    pub fn new(trace: &'t CompiledTrace, seed: u64) -> Self {
        Self {
            trace,
            walker: TraceWalker::new(trace, seed),
        }
    }
}

impl ExecutionBackend for CompiledBackend<'_> {
    #[inline]
    fn slot_count(&self) -> usize {
        self.trace.len()
    }

    #[inline]
    fn addr_of(&self, slot: usize) -> VirtAddr {
        self.trace.addr_of(slot)
    }

    #[inline]
    fn slot_of(&self, addr: VirtAddr) -> Option<usize> {
        self.trace.slot_of(addr)
    }

    #[inline]
    fn page_of(&self, slot: usize) -> u64 {
        self.trace.decoded[slot].page
    }

    #[inline]
    fn decoded(&self, slot: usize) -> DecodedInstr {
        self.trace.decoded[slot]
    }

    #[inline]
    fn entry_slot(&self) -> usize {
        self.trace.entry_slot()
    }

    #[inline]
    fn step(&mut self) -> StepInfo {
        self.walker.step()
    }

    #[inline]
    fn current_slot(&self) -> usize {
        self.walker.current_slot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfr_types::PageGeometry;
    use cfr_workload::{compile_trace, generate, GeneratorParams};

    #[test]
    fn backends_agree_on_layout_and_decode() {
        let prog = generate(&GeneratorParams::small_test());
        let laid = LaidProgram::lay_out(&prog, PageGeometry::default_4k(), true);
        let trace = compile_trace(&laid);
        let interp = InterpBackend::new(&laid, 7);
        let compiled = CompiledBackend::new(&trace, 7);
        assert_eq!(interp.slot_count(), compiled.slot_count());
        assert_eq!(interp.entry_slot(), compiled.entry_slot());
        for slot in 0..interp.slot_count() {
            assert_eq!(interp.addr_of(slot), compiled.addr_of(slot));
            assert_eq!(interp.page_of(slot), compiled.page_of(slot));
            let a = interp.decoded(slot);
            let b = compiled.decoded(slot);
            assert_eq!(a, b, "decode metadata diverged at slot {slot}");
            assert_eq!(interp.slot_of(interp.addr_of(slot)), Some(slot));
            assert_eq!(compiled.slot_of(compiled.addr_of(slot)), Some(slot));
        }
    }

    #[test]
    fn backends_step_identically() {
        let prog = generate(&GeneratorParams::small_test());
        let laid = LaidProgram::lay_out(&prog, PageGeometry::default_4k(), false);
        let trace = compile_trace(&laid);
        let mut interp = InterpBackend::new(&laid, 0x5EED);
        let mut compiled = CompiledBackend::new(&trace, 0x5EED);
        for i in 0..10_000 {
            assert_eq!(interp.current_slot(), compiled.current_slot());
            assert_eq!(interp.step(), compiled.step(), "diverged at step {i}");
        }
    }
}
