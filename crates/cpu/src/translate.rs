//! The fetch-translation interface: where the paper's strategies plug into
//! the pipeline.
//!
//! The fetch engine calls [`FetchTranslator::on_fetch`] for **every**
//! instruction fetch (right-path and wrong-path — speculative fetches cost
//! real iTLB energy, exactly as in sim-outorder) and
//! [`FetchTranslator::on_il1_miss`] when a fetch misses the iL1 and a
//! physical address is needed for the (PI-PT) L2. The strategy decides what
//! each event costs: an iTLB CAM search, a CFR register read, a comparator
//! activation, nothing at all — and how many serial stall cycles the fetch
//! group pays.

use cfr_energy::EnergyMeter;
use cfr_mem::{PageTable, TlbStats};
use cfr_types::{AddressingMode, Pfn, VirtAddr};

/// Why this instruction is being fetched.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FetchKind {
    /// Next sequential instruction. `page_crossed` marks the BOUNDARY case:
    /// the previous instruction was on a different page.
    Sequential {
        /// Whether this sequential fetch crossed a page boundary.
        page_crossed: bool,
    },
    /// First instruction at a predicted-taken branch's target.
    BranchTarget {
        /// The source branch carried SoLA's in-page bit.
        in_page_marked: bool,
        /// The source branch was a compiler-inserted boundary branch.
        from_boundary: bool,
    },
    /// First instruction after a mispredict recovery (the iTLB lookup the
    /// paper's Figure 3 charges at return points B and D).
    Recovery,
}

/// One instruction-fetch event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FetchEvent {
    /// Address being fetched.
    pub pc: VirtAddr,
    /// Why it is being fetched.
    pub kind: FetchKind,
    /// Whether the fetch engine is currently on a mispredicted path.
    pub wrong_path: bool,
}

/// What a translation event produced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TranslationOutcome {
    /// The frame, when the addressing mode required translating here
    /// (`None` for VI-VT's `on_fetch`, which defers to the miss path).
    pub pfn: Option<Pfn>,
    /// Serial stall cycles charged to this fetch group (PI-PT's in-front
    /// lookup, VI-VT's miss-path lookup, or a 50-cycle iTLB miss).
    pub stall: u32,
}

impl TranslationOutcome {
    /// A free, translation-less outcome.
    #[must_use]
    pub fn none() -> Self {
        Self {
            pfn: None,
            stall: 0,
        }
    }
}

/// The strategy interface (Base, OPT, HoA, SoCA, SoLA, IA live in
/// `cfr-core`).
pub trait FetchTranslator {
    /// Which iL1 addressing scheme this run models.
    fn addressing_mode(&self) -> AddressingMode;

    /// Called once per instruction fetch, before/parallel-to the iL1.
    fn on_fetch(&mut self, ev: &FetchEvent, pt: &mut PageTable) -> TranslationOutcome;

    /// Called when the fetch misses iL1 and the physical address is needed
    /// for L2 (the VI-VT translation point; PI-PT/VI-PT strategies return
    /// the already-translated frame for free).
    fn on_il1_miss(&mut self, ev: &FetchEvent, pt: &mut PageTable) -> TranslationOutcome;

    /// A branch was fetched and predicted — IA's CFR-vs-BTB comparison
    /// point (Figure 2). `predicted_target` is the predicted target when
    /// the front end has one (BTB hit, or the return-address stack for
    /// returns — the paper generalizes: "wait until a branch target address
    /// is available and then perform a comparison").
    fn on_branch_predicted(&mut self, branch_pc: VirtAddr, predicted_target: Option<VirtAddr>) {
        let _ = (branch_pc, predicted_target);
    }

    /// A right-path branch mispredicted; the next fetch will be
    /// [`FetchKind::Recovery`].
    fn on_mispredict(&mut self) {}

    /// Host-side hint that `pc` is about to be translated: pull the iTLB
    /// metadata for it toward the host's caches. Architecturally a no-op —
    /// implementations must read only `&self` and charge nothing — so the
    /// default empty body is always correct; strategies with an iTLB
    /// override it to join the fetch group's [`crate::LookupBatch`].
    fn prefetch_translation(&self, pc: VirtAddr) {
        let _ = pc;
    }

    /// Energy accounting for the translation path.
    fn meter(&self) -> &EnergyMeter;

    /// iTLB behavioural counters.
    fn itlb_stats(&self) -> TlbStats;

    /// Short display name.
    fn name(&self) -> &'static str;
}

/// A translator that translates for free with no iTLB at all: used to unit
/// test the pipeline in isolation and as the "no translation cost" control.
#[derive(Debug, Default)]
pub struct NullTranslator {
    meter: EnergyMeter,
}

impl FetchTranslator for NullTranslator {
    fn addressing_mode(&self) -> AddressingMode {
        AddressingMode::ViPt
    }

    fn on_fetch(&mut self, _ev: &FetchEvent, _pt: &mut PageTable) -> TranslationOutcome {
        TranslationOutcome::none()
    }

    fn on_il1_miss(&mut self, ev: &FetchEvent, pt: &mut PageTable) -> TranslationOutcome {
        // Translation is still functionally required for the L2's physical
        // address; it just costs nothing here.
        let geom = cfr_types::PageGeometry::default_4k();
        let (pfn, _) = pt.translate(geom.vpn(ev.pc), cfr_types::Protection::code());
        TranslationOutcome {
            pfn: Some(pfn),
            stall: 0,
        }
    }

    fn meter(&self) -> &EnergyMeter {
        &self.meter
    }

    fn itlb_stats(&self) -> TlbStats {
        TlbStats::default()
    }

    fn name(&self) -> &'static str {
        "null"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_translator_costs_nothing() {
        let mut t = NullTranslator::default();
        let mut pt = PageTable::new();
        let ev = FetchEvent {
            pc: VirtAddr::new(0x40_0000),
            kind: FetchKind::Sequential {
                page_crossed: false,
            },
            wrong_path: false,
        };
        let out = t.on_fetch(&ev, &mut pt);
        assert_eq!(out, TranslationOutcome::none());
        let miss = t.on_il1_miss(&ev, &mut pt);
        assert_eq!(miss.stall, 0);
        assert!(miss.pfn.is_some());
        assert_eq!(t.meter().total_pj(), 0.0);
    }
}
