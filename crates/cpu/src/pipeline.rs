//! The cycle-level out-of-order pipeline.
//!
//! Trace-driven in the sim-outorder style: the [`Walker`] supplies the
//! architectural path; the fetch engine follows *predictions*, running down
//! wrong paths (which cost real iL1/iTLB energy) until the mispredicted
//! branch resolves, then flushes and redirects.
//!
//! Modeling notes (fidelity matches what the paper measures):
//!
//! - One iL1 access and one translation event per fetched instruction, as
//!   sim-outorder charges them.
//! - The iL1 is behaviourally indexed by virtual address in all three
//!   addressing modes; PI-PT/VI-PT/VI-VT differ in *when the translation
//!   happens and what it costs* (latency/energy via [`FetchTranslator`]),
//!   not in hit/miss behaviour — the paper's mechanisms "do not affect iL1
//!   and L2 hits or misses".
//! - Register dependencies use an infinite-rename scoreboard (ready-cycle
//!   per architectural register); memory dependencies are not modeled.
//! - Two memory ports (sim-outorder's default; the paper's Table 1 lists
//!   only the ALU mix).

use cfr_mem::{AccessKind, Cache, Dram, PageTable, Tlb};

use crate::backend::LookupBatch;
use cfr_types::{PageGeometry, Protection, VirtAddr, INSTRUCTION_BYTES};
use cfr_workload::{BranchKind, CompiledTrace, LaidProgram, OpClass, RegId};

use crate::backend::{CompiledBackend, ExecutionBackend, InterpBackend};
use crate::bpred::BranchPredictor;
use crate::config::CpuConfig;
use crate::ring::Ring;
use crate::stats::CpuStats;
use crate::translate::{FetchEvent, FetchKind, FetchTranslator, TranslationOutcome};

/// Memory ports (sim-outorder default, not in the paper's Table 1).
const MEM_PORTS: u32 = 2;

/// Safety valve: a run may take at most this many cycles per committed
/// instruction before the pipeline declares itself wedged.
const MAX_CPI: u64 = 1000;

/// Why a [`Pipeline::run_slice`] call returned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SliceEnd {
    /// The commit target was reached; this process is done.
    Finished,
    /// The quantum expired first; the pipeline is frozen mid-flight and
    /// another `run_slice` call resumes it exactly where it stopped.
    Quantum,
}

#[derive(Clone, Copy, Debug)]
struct FetchedBranch {
    mispredicted: bool,
    recovery_slot: usize,
    taken: bool,
    target: VirtAddr,
    /// Branch kind, carried from fetch so predictor training at
    /// resolution never re-reads the instruction slot.
    kind: BranchKind,
}

/// Sentinel for [`FetchedInstr::mem_addr`] / [`RuuEntry::mem_addr`]: no
/// data address travels with this instruction. Real addresses stay below
/// the region bases (`< 2^60`), so the all-ones value never collides —
/// and the raw `u64` keeps the record 8 bytes slimmer than an
/// `Option<VirtAddr>`.
const NO_MEM_ADDR: u64 = u64::MAX;

/// One fetched instruction, carrying the decode-time metadata (class,
/// operands, latency) read from the instruction slot *at fetch* — the
/// fetch engine touches the slot anyway for the branch spec, so decode
/// and issue never have to index the slot array again. The fat
/// [`FetchedBranch`] payload of a right-path branch rides in a parallel
/// side ring ([`Pipeline::fq_branches`]) instead of padding every
/// record: ~80% of instructions are not branches, and the per-cycle
/// queue traffic only needs the flag.
#[derive(Clone, Copy, Debug)]
struct FetchedInstr {
    pc: VirtAddr,
    class: OpClass,
    srcs: [Option<RegId>; 2],
    dst: Option<RegId>,
    latency: u32,
    wrong_path: bool,
    /// Data address of a right-path load/store, or [`NO_MEM_ADDR`].
    mem_addr: u64,
    /// Right-path branch: a [`FetchedBranch`] record travels in lockstep
    /// through [`Pipeline::fq_branches`]. (Wrong-path branches are
    /// predicted but never recorded — they can never resolve.)
    has_branch: bool,
    is_boundary: bool,
}

/// [`Ring`] fill placeholder for the fetch queue (and, field-wise, the
/// RUU rings) — an arbitrary dead value, never observable through the
/// ring API.
const NO_INSTR: FetchedInstr = FetchedInstr {
    pc: VirtAddr::new(0),
    class: OpClass::IntAlu,
    srcs: [None, None],
    dst: None,
    latency: 0,
    wrong_path: false,
    mem_addr: NO_MEM_ADDR,
    has_branch: false,
    is_boundary: false,
};

/// [`Ring`] fill placeholder for the branch side rings.
const NO_BRANCH: FetchedBranch = FetchedBranch {
    mispredicted: false,
    recovery_slot: 0,
    taken: false,
    target: VirtAddr::new(0),
    kind: BranchKind::Jump,
};

/// The commit/completion-facing slice of an RUU entry, kept in a compact
/// parallel array (see [`Pipeline::ruu_hot`]) so the commit head check
/// and the completion pass touch a few bytes per entry instead of
/// dragging the whole [`RuuEntry`] through the cache.
#[derive(Clone, Copy, Debug)]
struct RuuHot {
    done_at: u64,
    issued: bool,
    done: bool,
    /// Right-path branch whose completion must train the predictor (and
    /// possibly trigger mispredict recovery).
    resolves_branch: bool,
}

/// Packed source-operand index for [`PendingIssue`]: a register number,
/// or [`NO_SRC`] for an absent operand. `NO_SRC` indexes the permanently
/// zero sentinel slot of [`Pipeline::reg_ready`], so the readiness check
/// is two unconditional loads and a `max` — no `Option` branching.
const NO_SRC: u8 = RegId::COUNT as u8;

#[inline]
fn pack_src(r: Option<RegId>) -> u8 {
    r.map_or(NO_SRC, |r| r.0)
}

/// One unissued entry in the issue pass's pending list — self-contained
/// (operands and class travel with the wake time), so scanning candidates
/// touches only this dense array until an entry actually issues.
#[derive(Clone, Copy, Debug)]
struct PendingIssue {
    /// Provable earliest cycle this entry could issue.
    wake_at: u64,
    /// Decode-order sequence number (see [`Pipeline::head_seq`]).
    seq: u64,
    /// Source operands as [`pack_src`] indices (readiness check).
    srcs: [u8; 2],
    /// Functional class (unit check).
    class: OpClass,
}

/// The cold remainder of an RUU entry: read only when a specific entry is
/// decoded, issued, resolved, or committed — never by the per-cycle scans.
/// Branch payloads live in [`Pipeline::ruu_branches`], keyed by seq.
#[derive(Clone, Copy, Debug)]
struct RuuEntry {
    pc: VirtAddr,
    class: OpClass,
    dst: Option<RegId>,
    latency: u32,
    /// Data address of a right-path load/store, or [`NO_MEM_ADDR`].
    mem_addr: u64,
    wrong_path: bool,
    is_boundary: bool,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum PendingKind {
    Sequential,
    BranchTarget {
        in_page_marked: bool,
        from_boundary: bool,
    },
    Recovery,
}

/// The out-of-order core, generic over its [`ExecutionBackend`] — the
/// per-fetch decode and architectural-step calls are direct (and
/// inlinable) per backend, never virtual.
pub struct Pipeline<B: ExecutionBackend> {
    backend: B,
    cfg: CpuConfig,
    geom: PageGeometry,
    predictor: BranchPredictor,
    il1: Cache,
    dl1: Cache,
    l2: Cache,
    dram: Dram,
    dtlb: Tlb,
    page_table: PageTable,

    fetch_q: Ring<FetchedInstr>,
    /// Branch payloads of fetch-queue entries with
    /// [`FetchedInstr::has_branch`], in fetch (FIFO) order — decode
    /// consumes the front record when it dequeues a branch-carrying
    /// instruction. Cleared together with `fetch_q` on flush.
    fq_branches: Ring<FetchedBranch>,
    /// Cold per-entry data, in lockstep with [`Pipeline::ruu_hot`].
    ruu: Ring<RuuEntry>,
    /// Hot per-entry data the per-cycle scans stream over.
    ruu_hot: Ring<RuuHot>,
    /// Branch payloads of RUU entries whose [`RuuHot::resolves_branch`] is
    /// set, tagged with the entry's seq, in seq order. Front records drain
    /// at commit; back records are popped on mispredict flush.
    ruu_branches: Ring<(u64, FetchedBranch)>,
    /// `(done_at, seq)` of every issued-but-incomplete entry. Sequence
    /// numbers are decode order: the RUU front holds `head_seq`, so an
    /// entry's index is `seq - head_seq` — stable across front pops,
    /// which is what lets the completion pass touch only the few entries
    /// actually in flight instead of scanning the window.
    inflight: Vec<(u64, u64)>,
    /// Sequence number of the RUU front entry.
    head_seq: u64,
    /// Earliest `done_at` among in-flight entries (`u64::MAX` when none):
    /// the completion pass runs only on cycles that can complete
    /// something, so quiet cycles are O(1). May be stale-low after a
    /// flush, which only costs one empty recheck.
    next_done_at: u64,
    /// Every unissued entry, in seq (age) order. An entry sleeps until
    /// its provable earliest-issue cycle: operand ready times can only
    /// move it *earlier* when a shorter-latency writer overwrites
    /// `reg_ready` — [`Pipeline::issue`] detects that (rare) decrease and
    /// clamps every wake time, so a sleeping entry is never checked later
    /// than the original every-cycle scan would have issued it.
    pending: Vec<PendingIssue>,
    /// Issue gate: no cycle before this can issue anything, so the issue
    /// pass is skipped entirely. Sound because operand readiness
    /// (`reg_ready`) changes only inside [`Pipeline::issue`] itself, and
    /// a pass that issued nothing left every functional unit free — so a
    /// blocked window stays blocked until the earliest wake time that
    /// pass observed. Newly decoded entries re-arm the gate.
    next_issue_at: u64,
    lsq_used: usize,
    /// Ready cycle per architectural register, plus one extra sentinel
    /// slot (index [`NO_SRC`]) that stays 0 forever — absent operands
    /// read it, keeping the issue scan's readiness check branchless.
    reg_ready: [u64; RegId::COUNT + 1],

    fetch_slot: usize,
    wrong_path: bool,
    fetch_stall_until: u64,
    pending_kind: PendingKind,
    /// Virtual page number of the most recently fetched PC.
    last_fetch_page: u64,

    cycle: u64,
    stats: CpuStats,
}

impl<'p> Pipeline<InterpBackend<'p>> {
    /// Builds a pipeline over a laid-out program (the reference
    /// interpreter backend). `seed` drives the architectural walker
    /// (branch outcomes, data addresses) — the same seed across
    /// strategies compares them on the identical instruction stream.
    #[must_use]
    pub fn new(prog: &'p LaidProgram, cfg: CpuConfig, seed: u64) -> Self {
        Self::with_backend(InterpBackend::new(prog, seed), cfg)
    }
}

impl<'t> Pipeline<CompiledBackend<'t>> {
    /// Builds a pipeline over a pre-decoded compiled trace. Byte-identical
    /// to [`Pipeline::new`] over the trace's source program with the same
    /// seed and config.
    #[must_use]
    pub fn compiled(trace: &'t CompiledTrace, cfg: CpuConfig, seed: u64) -> Self {
        Self::with_backend(CompiledBackend::new(trace, seed), cfg)
    }
}

impl<B: ExecutionBackend> Pipeline<B> {
    /// Builds a pipeline over an arbitrary execution backend.
    #[must_use]
    pub fn with_backend(backend: B, cfg: CpuConfig) -> Self {
        let entry = backend.entry_slot();
        let entry_page = backend.page_of(entry);
        Self {
            backend,
            geom: cfg.geometry,
            predictor: BranchPredictor::new(cfg.predictor),
            il1: Cache::new(cfg.il1),
            dl1: Cache::new(cfg.dl1),
            l2: Cache::new(cfg.l2),
            dram: Dram::new(cfg.dram),
            dtlb: Tlb::new(cfg.dtlb),
            page_table: PageTable::new(),
            fetch_q: Ring::with_capacity(cfg.fetch_queue, NO_INSTR),
            fq_branches: Ring::with_capacity(cfg.fetch_queue, NO_BRANCH),
            ruu: Ring::with_capacity(
                cfg.ruu_size,
                RuuEntry {
                    pc: NO_INSTR.pc,
                    class: NO_INSTR.class,
                    dst: None,
                    latency: 0,
                    mem_addr: NO_MEM_ADDR,
                    wrong_path: false,
                    is_boundary: false,
                },
            ),
            ruu_hot: Ring::with_capacity(
                cfg.ruu_size,
                RuuHot {
                    done_at: 0,
                    issued: false,
                    done: false,
                    resolves_branch: false,
                },
            ),
            ruu_branches: Ring::with_capacity(cfg.ruu_size, (0, NO_BRANCH)),
            inflight: Vec::with_capacity(cfg.ruu_size),
            head_seq: 0,
            next_done_at: u64::MAX,
            pending: Vec::with_capacity(cfg.ruu_size),
            next_issue_at: 0,
            lsq_used: 0,
            reg_ready: [0; RegId::COUNT + 1],
            fetch_slot: entry,
            wrong_path: false,
            fetch_stall_until: 0,
            pending_kind: PendingKind::Sequential,
            last_fetch_page: entry_page,
            cycle: 0,
            cfg,
            stats: CpuStats::default(),
        }
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &CpuStats {
        &self.stats
    }

    /// Current cycle.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Runs until `max_commits` instructions have committed.
    ///
    /// Generic over the translator so every concrete strategy gets its own
    /// monomorphized copy of the fetch loop — the per-fetch
    /// [`FetchTranslator::on_fetch`] call is direct (and inlinable)
    /// instead of virtual. Callers holding a trait object use
    /// [`Pipeline::run_dyn`].
    ///
    /// # Panics
    ///
    /// Panics if the pipeline wedges (cycles exceed `1000 × max_commits`),
    /// which indicates a simulator bug rather than a slow workload.
    pub fn run<T: FetchTranslator + ?Sized>(&mut self, translator: &mut T, max_commits: u64) {
        self.run_slice(translator, max_commits, u64::MAX);
        self.finalize_stats();
    }

    /// Runs until `max_commits` instructions have committed **or** the
    /// cycle clock reaches `quantum_end`, whichever comes first — the
    /// scheduling primitive a time-sliced multiprogrammed scenario needs.
    /// All pipeline state (fetch queue, RUU, in-flight memory ops, branch
    /// history) is preserved across slices, exactly as a context switch
    /// freezes a core; resuming simply continues the loop. With
    /// `quantum_end == u64::MAX` this is [`Pipeline::run`] minus the final
    /// stats snapshot (call [`Pipeline::finalize_stats`] after the last
    /// slice).
    ///
    /// # Panics
    ///
    /// Panics if the pipeline wedges (see [`Pipeline::run`]).
    pub fn run_slice<T: FetchTranslator + ?Sized>(
        &mut self,
        translator: &mut T,
        max_commits: u64,
        quantum_end: u64,
    ) -> SliceEnd {
        let cycle_cap = self
            .cycle
            .saturating_add(
                (max_commits - self.stats.committed.min(max_commits)).saturating_mul(MAX_CPI),
            )
            .saturating_add(1_000_000);
        while self.stats.committed < max_commits && self.cycle < quantum_end {
            let did_commit = self.commit(max_commits);
            if self.stats.committed >= max_commits {
                break;
            }
            let did_resolve = self.resolve_completions(translator);
            let did_issue = self.issue();
            let did_decode = self.decode();
            let did_fetch = self.fetch(translator);
            if did_commit || did_resolve || did_issue || did_decode || did_fetch {
                self.cycle += 1;
            } else {
                // Nothing moved this cycle, and by induction nothing can
                // move until one of the stage wake times arrives: commit
                // waits on the head's completion, resolution on
                // `next_done_at`, issue on its gate, fetch on its stall —
                // and decode only ever becomes able after one of those
                // acts. Jump straight there; every subsequent action lands
                // on the same cycle number it would have, so statistics
                // (including `cycles`) are byte-identical. Stall-heavy
                // runs (DRAM waits, 50-cycle TLB walks) skip the idle
                // cycles entirely instead of re-checking five gates each.
                let mut wake = u64::MAX;
                if let Some(h) = self.ruu_hot.front() {
                    if h.done {
                        wake = wake.min(h.done_at);
                    }
                }
                if !self.inflight.is_empty() {
                    wake = wake.min(self.next_done_at);
                }
                if !self.pending.is_empty() {
                    wake = wake.min(self.next_issue_at);
                }
                if self.fetch_q.len() < self.cfg.fetch_queue {
                    wake = wake.min(self.fetch_stall_until);
                }
                // `wake == u64::MAX` means a wedged pipeline; fall back to
                // single-stepping so the cycle-cap assert below reports it.
                // A quantum boundary caps the jump: the slice ends exactly
                // at `quantum_end`, never beyond it (the loop condition
                // guarantees `quantum_end > cycle`, so progress holds).
                self.cycle = wake
                    .max(self.cycle + 1)
                    .min(self.cycle + MAX_CPI)
                    .min(quantum_end);
            }
            assert!(
                self.cycle < cycle_cap,
                "pipeline wedged: {} commits in {} cycles",
                self.stats.committed,
                self.cycle
            );
        }
        if self.stats.committed >= max_commits {
            SliceEnd::Finished
        } else {
            SliceEnd::Quantum
        }
    }

    /// Snapshots the memory-hierarchy counters (and the final cycle count)
    /// into [`Pipeline::stats`]. [`Pipeline::run`] does this implicitly; a
    /// slice-driven caller does it once, after the last slice.
    pub fn finalize_stats(&mut self) {
        self.stats.cycles = self.cycle;
        self.stats.il1 = *self.il1.stats();
        self.stats.dl1 = *self.dl1.stats();
        self.stats.l2 = *self.l2.stats();
        self.stats.dtlb = *self.dtlb.stats();
    }

    /// Advances the pipeline's cycle clock to (at least) `cycle` — how a
    /// scheduler accounts wall-clock that passed while this pipeline was
    /// switched out (other processes' slices, context-switch and shootdown
    /// penalties). Monotonic: never moves the clock backwards.
    pub fn set_cycle(&mut self, cycle: u64) {
        self.cycle = self.cycle.max(cycle);
    }

    /// Mutable access to the dTLB — a scheduler migrates the (single,
    /// shared) hardware dTLB between per-process pipelines on a context
    /// switch, applying its ASID or flush policy in between.
    pub fn dtlb_mut(&mut self) -> &mut Tlb {
        &mut self.dtlb
    }

    /// Dyn-compatible wrapper over [`Pipeline::run`] for callers that only
    /// hold a `&mut dyn FetchTranslator`.
    pub fn run_dyn(&mut self, translator: &mut dyn FetchTranslator, max_commits: u64) {
        self.run(translator, max_commits);
    }

    // ---- commit ------------------------------------------------------

    /// Returns whether anything committed this cycle.
    fn commit(&mut self, max_commits: u64) -> bool {
        let before = self.stats.committed;
        for _ in 0..self.cfg.commit_width {
            if self.stats.committed >= max_commits {
                break;
            }
            let Some(&hot) = self.ruu_hot.front() else {
                break;
            };
            if !hot.done || hot.done_at > self.cycle {
                break;
            }
            self.ruu_hot.drop_front();
            let entry = self.ruu.front().expect("hot and cold in lockstep");
            let (class, is_boundary) = (entry.class, entry.is_boundary);
            debug_assert!(!entry.wrong_path, "wrong-path instruction at commit");
            self.ruu.drop_front();
            if hot.resolves_branch {
                // Retire this entry's branch payload from the side ring.
                debug_assert_eq!(
                    self.ruu_branches.front().map(|&(s, _)| s),
                    Some(self.head_seq)
                );
                self.ruu_branches.drop_front();
            }
            if !hot.issued {
                // A decode-complete branch placeholder committing before
                // ever issuing: it is the oldest entry, hence the pending
                // list's head.
                debug_assert_eq!(self.pending.first().map(|p| p.seq), Some(self.head_seq));
                self.pending.remove(0);
            }
            self.head_seq += 1;
            if matches!(class, OpClass::Load | OpClass::Store) {
                self.lsq_used -= 1;
            }
            if is_boundary {
                self.stats.boundary_branches += 1;
            }
            self.stats.committed += 1;
        }
        self.stats.committed != before
    }

    // ---- execute completion & branch resolution ----------------------

    /// Returns whether the completion pass ran (conservatively `true`
    /// whenever the quiet-cycle gate opened, even if a stale-low
    /// `next_done_at` meant nothing actually completed).
    fn resolve_completions<T: FetchTranslator + ?Sized>(&mut self, translator: &mut T) -> bool {
        // Quiet-cycle gate: nothing in flight can complete before
        // `next_done_at`, so most cycles return here in O(1).
        if self.next_done_at > self.cycle || self.inflight.is_empty() {
            return false;
        }
        let cycle = self.cycle;
        let mut next_done = u64::MAX;
        let mut resolve_at: Option<(usize, usize)> = None;
        // Process completions oldest-first (predictor training order is
        // architectural state); the in-flight list is kept seq-sorted by
        // the ordered insert in `issue`.
        debug_assert!(self.inflight.windows(2).all(|w| w[0].1 < w[1].1));
        let mut j = 0;
        while j < self.inflight.len() {
            let (done_at, seq) = self.inflight[j];
            if done_at > cycle {
                next_done = next_done.min(done_at);
                j += 1;
                continue;
            }
            self.inflight.remove(j);
            let i = (seq - self.head_seq) as usize;
            let h = &mut self.ruu_hot[i];
            h.done = true;
            if h.resolves_branch {
                let pc = self.ruu[i].pc;
                let b = self.branch_of(seq);
                // Train the predictor at resolution.
                self.predictor.update(pc, b.kind, b.taken, b.target);
                if b.mispredicted && resolve_at.is_none() {
                    resolve_at = Some((i, b.recovery_slot));
                }
            }
        }
        self.next_done_at = next_done;
        if let Some((i, recovery)) = resolve_at {
            let done_at = self.ruu_hot[i].done_at;
            // Flush everything younger: by construction it is wrong-path.
            let keep_below = self.head_seq + i as u64 + 1;
            self.inflight.retain(|&(_, seq)| seq < keep_below);
            self.pending.retain(|p| p.seq < keep_below);
            while self.ruu.len() > i + 1 {
                self.ruu_hot.pop_back().expect("len checked");
                let dropped = self.ruu.pop_back().expect("hot and cold in lockstep");
                if matches!(dropped.class, OpClass::Load | OpClass::Store) {
                    self.lsq_used -= 1;
                }
            }
            while self
                .ruu_branches
                .back()
                .is_some_and(|&(s, _)| s >= keep_below)
            {
                self.ruu_branches.pop_back();
            }
            self.fetch_q.clear();
            self.fq_branches.clear();
            self.wrong_path = false;
            self.fetch_slot = recovery;
            self.pending_kind = PendingKind::Recovery;
            self.fetch_stall_until = self
                .fetch_stall_until
                .max(done_at + u64::from(self.cfg.mispredict_penalty));
            translator.on_mispredict();
        }
        true
    }

    /// Branch payload of the RUU entry with the given seq. The side ring
    /// holds one record per un-committed resolving branch in seq order —
    /// a handful of entries at most — so a front-to-back scan beats any
    /// indexed structure.
    fn branch_of(&self, seq: u64) -> FetchedBranch {
        for i in 0..self.ruu_branches.len() {
            let (s, b) = self.ruu_branches[i];
            if s == seq {
                return b;
            }
        }
        unreachable!("resolving entry carries its branch (seq {seq})");
    }

    // ---- issue -------------------------------------------------------

    /// Returns whether anything issued this cycle.
    fn issue(&mut self) -> bool {
        // Event gate: a previous pass proved nothing can issue before
        // `next_issue_at` (see the field's invariant).
        if self.cycle < self.next_issue_at {
            return false;
        }
        let mut issued = 0usize;
        let mut hit_width_limit = false;
        // Earliest wake among entries that stay pending — only
        // meaningful when nothing issues.
        let mut next_wake = u64::MAX;
        // Set when a shorter-latency writer moved a register's ready time
        // *backwards*: cached wake times may now be too late.
        let mut ready_decreased = false;
        let mut fu = [0u32; 5]; // IntAlu, IntMul, FpAlu, FpMul, Mem
        let cycle = self.cycle;
        // One in-place pass over the pending (unissued) entries in age
        // order: sleeping entries cost a single compare; issued entries
        // are dropped; the rest are retained with an updated wake time.
        let mut j = 0; // read cursor
        let mut k = 0; // write cursor (retained prefix)
        while j < self.pending.len() {
            if issued >= self.cfg.issue_width {
                hit_width_limit = true;
                break;
            }
            let p = self.pending[j];
            j += 1;
            if p.wake_at > cycle {
                next_wake = next_wake.min(p.wake_at);
                // Retained in place (k == j-1) unless an earlier entry
                // issued; skip the self-copy in the common sleeping case.
                if k < j - 1 {
                    self.pending[k] = p;
                }
                k += 1;
                continue;
            }
            let ready_at =
                self.reg_ready[p.srcs[0] as usize].max(self.reg_ready[p.srcs[1] as usize]);
            if ready_at > cycle {
                next_wake = next_wake.min(ready_at);
                self.pending[k] = PendingIssue {
                    wake_at: ready_at,
                    ..p
                };
                k += 1;
                continue;
            }
            let class = p.class;
            let (fu_idx, fu_limit) = match class {
                OpClass::IntAlu | OpClass::Branch => (0, self.cfg.int_alu),
                OpClass::IntMul => (1, self.cfg.int_mul),
                OpClass::FpAlu => (2, self.cfg.fp_alu),
                OpClass::FpMul => (3, self.cfg.fp_mul),
                OpClass::Load | OpClass::Store => (4, MEM_PORTS),
            };
            if fu[fu_idx] >= fu_limit {
                // Units free up next cycle; retry then.
                next_wake = next_wake.min(cycle + 1);
                self.pending[k] = PendingIssue {
                    wake_at: cycle + 1,
                    ..p
                };
                k += 1;
                continue;
            }
            fu[fu_idx] += 1;

            let seq = p.seq;
            let idx = (seq - self.head_seq) as usize;
            debug_assert!(!self.ruu_hot[idx].issued, "pending entry already issued");
            let (mem_addr, base_latency, dst) = {
                let e = &self.ruu[idx];
                (e.mem_addr, e.latency, e.dst)
            };
            let latency = match class {
                OpClass::Load if mem_addr != NO_MEM_ADDR => {
                    base_latency + self.data_access(VirtAddr::new(mem_addr), AccessKind::Read)
                }
                OpClass::Store if mem_addr != NO_MEM_ADDR => {
                    // Stores retire through a write buffer: the dL1/dTLB are
                    // exercised (energy/behaviour) but the store does not
                    // stall the pipeline beyond address generation.
                    let _ = self.data_access(VirtAddr::new(mem_addr), AccessKind::Write);
                    base_latency
                }
                _ => base_latency,
            };

            let done_at = cycle + u64::from(latency);
            let h = &mut self.ruu_hot[idx];
            h.issued = true;
            h.done_at = done_at;
            if !h.done {
                // Keep the in-flight list sorted by seq (age): issues run
                // in ascending age within a cycle, so the insertion
                // point is almost always the tail.
                let mut pos = self.inflight.len();
                while pos > 0 && self.inflight[pos - 1].1 > seq {
                    pos -= 1;
                }
                self.inflight.insert(pos, (done_at, seq));
                self.next_done_at = self.next_done_at.min(done_at);
            }
            if let Some(dst) = dst {
                let slot = &mut self.reg_ready[dst.0 as usize];
                if done_at < *slot {
                    ready_decreased = true;
                }
                *slot = done_at;
            }
            match class {
                OpClass::Load => self.stats.loads += 1,
                OpClass::Store => self.stats.stores += 1,
                _ => {}
            }
            issued += 1;
        }
        // Keep any entries the issue-width break left unexamined.
        if k < j {
            while j < self.pending.len() {
                self.pending[k] = self.pending[j];
                k += 1;
                j += 1;
            }
            self.pending.truncate(k);
        } else {
            debug_assert_eq!(k, j, "write cursor cannot pass read cursor");
        }
        if ready_decreased {
            // Cached wake times assumed ready times only move later;
            // clamp them so every sleeper is rechecked promptly.
            for p in &mut self.pending {
                p.wake_at = p.wake_at.min(cycle + 1);
            }
            next_wake = cycle + 1;
        }
        // Arm the gate. A pass that issued something (or stopped at the
        // issue width) may free units or wake dependents next cycle; only
        // a clean nothing-issued pass proves a longer quiet window.
        self.next_issue_at = if issued > 0 || hit_width_limit {
            cycle + 1
        } else {
            next_wake
        };
        issued > 0
    }

    /// dTLB + dL1 (+L2, +DRAM) access for a data reference; returns the
    /// added latency in cycles.
    fn data_access(&mut self, addr: VirtAddr, kind: AccessKind) -> u32 {
        let vpn = self.geom.vpn(addr);
        // The dTLB and dL1 probes are independent (the dL1 is virtually
        // indexed); overlap their host-memory misses before either runs.
        LookupBatch::begin()
            .tlb(&self.dtlb, vpn)
            .cache(&self.dl1, addr.raw());
        let t = self
            .dtlb
            .lookup(vpn, &mut self.page_table, Protection::data());
        let mut latency = t.penalty; // 0 on hit, 50 on miss
        if t.fault {
            // A protection fault traps to the OS handler: the access still
            // completes (the simulator has no architectural kill path) but
            // the configured handler latency is charged, so faults cost
            // cycles instead of just incrementing a counter.
            latency += self.cfg.fault_latency;
        }
        let pa = self.geom.join(t.pfn, self.geom.offset(addr));
        let r = self.dl1.access(addr.raw(), kind);
        if r.hit {
            latency += self.dl1.hit_latency() - 1; // first cycle counted in issue latency
        } else {
            let l2r = self.l2.access(pa.raw(), AccessKind::Read);
            latency += self.l2.hit_latency();
            if !l2r.hit {
                latency += self.dram.access(pa.raw());
            }
            if let Some(wb) = l2r.writeback {
                self.dram.access(wb);
            }
        }
        if let Some(wb) = r.writeback {
            // Dirty dL1 eviction drains to L2 off the critical path.
            let wbl2 = self.l2.access(wb, AccessKind::Write);
            if let Some(wb2) = wbl2.writeback {
                self.dram.access(wb2);
            }
        }
        latency
    }

    // ---- decode ------------------------------------------------------

    /// Returns whether anything decoded this cycle.
    fn decode(&mut self) -> bool {
        let mut decoded = false;
        for _ in 0..self.cfg.decode_width {
            if self.ruu.len() >= self.cfg.ruu_size {
                break;
            }
            let Some(&f) = self.fetch_q.front() else {
                break;
            };
            let is_mem = matches!(f.class, OpClass::Load | OpClass::Store);
            if is_mem && self.lsq_used >= self.cfg.lsq_size {
                break;
            }
            self.fetch_q.drop_front();
            if is_mem {
                self.lsq_used += 1;
            }
            // Wrong-path branches never record a payload (they can never
            // resolve), so the flag alone decides resolution duty.
            debug_assert!(!(f.has_branch && f.wrong_path));
            let seq = self.head_seq + self.ruu.len() as u64;
            if f.has_branch {
                // Move the payload from the fetch-side ring to the
                // RUU-side ring, tagged with this entry's seq.
                let rec = *self
                    .fq_branches
                    .front()
                    .expect("branch payload in lockstep");
                self.fq_branches.drop_front();
                self.ruu_branches.push_back((seq, rec));
            }
            // A fresh entry is an issue candidate from the next cycle on.
            self.next_issue_at = self.next_issue_at.min(self.cycle + 1);
            self.pending.push(PendingIssue {
                wake_at: self.cycle + 1,
                seq,
                srcs: [pack_src(f.srcs[0]), pack_src(f.srcs[1])],
                class: f.class,
            });
            self.ruu.push_back(RuuEntry {
                pc: f.pc,
                class: f.class,
                dst: f.dst,
                latency: f.latency,
                mem_addr: f.mem_addr,
                wrong_path: f.wrong_path,
                is_boundary: f.is_boundary,
            });
            self.ruu_hot.push_back(RuuHot {
                done_at: self.cycle,
                issued: false,
                done: matches!(f.class, OpClass::Branch) && !f.has_branch,
                resolves_branch: f.has_branch,
            });
            decoded = true;
        }
        decoded
    }

    // ---- fetch -------------------------------------------------------

    /// Returns whether anything was fetched this cycle.
    fn fetch<T: FetchTranslator + ?Sized>(&mut self, translator: &mut T) -> bool {
        if self.cycle < self.fetch_stall_until {
            return false;
        }
        let mut group_stall: u32 = 0;
        let mut fetched_any = false;
        for _ in 0..self.cfg.fetch_width {
            if self.fetch_q.len() >= self.cfg.fetch_queue {
                break;
            }
            // `fetch_slot` only leaves [0, slot_count) by running
            // sequentially off the end, so the wrap is almost never
            // taken — guard the hardware divide instead of paying it on
            // every fetch.
            let slot = if self.fetch_slot >= self.backend.slot_count() {
                self.fetch_slot % self.backend.slot_count()
            } else {
                self.fetch_slot
            };
            let pc = self.backend.addr_of(slot);
            let d = self.backend.decoded(slot);

            // Translation event for this fetch.
            let kind = match self.pending_kind {
                PendingKind::Sequential => FetchKind::Sequential {
                    page_crossed: d.page != self.last_fetch_page,
                },
                PendingKind::BranchTarget {
                    in_page_marked,
                    from_boundary,
                } => FetchKind::BranchTarget {
                    in_page_marked,
                    from_boundary,
                },
                PendingKind::Recovery => FetchKind::Recovery,
            };
            let ev = FetchEvent {
                pc,
                kind,
                wrong_path: self.wrong_path,
            };
            // The strategy's iTLB probe and the iL1 tag probe below are
            // independent; overlap their host-memory misses up front.
            LookupBatch::begin()
                .translation(translator, pc)
                .cache(&self.il1, pc.raw());
            let out = translator.on_fetch(&ev, &mut self.page_table);
            group_stall = group_stall.max(out.stall);

            // iL1 (virtually keyed; see module docs).
            let il1_missed = !self.il1.access(pc.raw(), AccessKind::Read).hit;
            if il1_missed {
                let miss_out: TranslationOutcome =
                    translator.on_il1_miss(&ev, &mut self.page_table);
                let pfn = miss_out
                    .pfn
                    .expect("il1 miss translation must produce a frame");
                let pa = self.geom.join(pfn, self.geom.offset(pc));
                let l2r = self.l2.access(pa.raw(), AccessKind::Read);
                let mut miss_stall = miss_out.stall + self.l2.hit_latency();
                if !l2r.hit {
                    miss_stall += self.dram.access(pa.raw());
                }
                group_stall = group_stall.max(miss_stall);
            }

            // Instruction + prediction + oracle. Everything decode needs
            // came from the backend's pre-extracted metadata — the hot
            // loop never touches an `Instruction` (whose branch spec
            // carries a heap-allocated target set).
            self.pending_kind = PendingKind::Sequential;
            self.last_fetch_page = d.page;

            let mut fetched = FetchedInstr {
                pc,
                class: d.class,
                srcs: d.srcs,
                dst: d.dst,
                latency: d.latency,
                wrong_path: self.wrong_path,
                mem_addr: NO_MEM_ADDR,
                has_branch: false,
                is_boundary: d.boundary,
            };
            let mut break_after = il1_missed;

            if self.wrong_path {
                self.stats.wrong_path_fetched += 1;
                // Follow predictions blindly; nothing here resolves.
                if let Some(bk) = d.branch {
                    let pred = self.predictor.predict(pc, bk, pc.add(INSTRUCTION_BYTES));
                    translator.on_branch_predicted(pc, pred.target);
                    if pred.taken {
                        if let Some(t) = pred.target {
                            self.fetch_slot = self
                                .backend
                                .slot_of(t)
                                .unwrap_or((slot + 1) % self.backend.slot_count());
                            self.pending_kind = PendingKind::BranchTarget {
                                in_page_marked: d.in_page_hint,
                                from_boundary: d.boundary,
                            };
                            break_after = true;
                        } else {
                            self.fetch_slot = slot + 1;
                        }
                    } else {
                        self.fetch_slot = slot + 1;
                    }
                } else {
                    self.fetch_slot = slot + 1;
                }
            } else {
                self.stats.fetched += 1;
                debug_assert_eq!(
                    self.backend.current_slot(),
                    slot,
                    "fetch engine diverged from the architectural walker"
                );
                let step = self.backend.step();
                fetched.mem_addr = step.mem_addr.map_or(NO_MEM_ADDR, |a| a.raw());

                // Page-crossing statistics (Table 2), on the architectural
                // stream.
                if d.page != self.backend.page_of(step.next_slot) {
                    match step.branch {
                        Some(b) if b.taken && !step.is_boundary => {
                            self.stats.crossings_branch += 1;
                        }
                        _ => self.stats.crossings_boundary += 1,
                    }
                }

                if let Some(exec) = step.branch {
                    self.stats.branches += 1;
                    let bk = d.branch.expect("branch step has decoded kind");
                    let pred = self.predictor.predict(pc, bk, pc.add(INSTRUCTION_BYTES));
                    translator.on_branch_predicted(pc, pred.target);

                    let predicted_next = if pred.taken {
                        pred.target
                            .and_then(|t| self.backend.slot_of(t))
                            .unwrap_or(slot + 1)
                    } else {
                        slot + 1
                    };
                    let mispredicted = predicted_next != step.next_slot;
                    if mispredicted {
                        self.stats.mispredicts += 1;
                        self.wrong_path = true;
                    }
                    fetched.has_branch = true;
                    self.fq_branches.push_back(FetchedBranch {
                        mispredicted,
                        recovery_slot: step.next_slot,
                        taken: exec.taken,
                        target: exec.next_addr,
                        kind: bk,
                    });
                    self.fetch_slot = predicted_next;
                    if pred.taken && pred.target.is_some() {
                        self.pending_kind = PendingKind::BranchTarget {
                            in_page_marked: d.in_page_hint,
                            from_boundary: d.boundary,
                        };
                        // Fetch breaks on predicted-taken branches.
                        break_after = true;
                    }
                } else {
                    self.fetch_slot = step.next_slot;
                }
            }

            self.fetch_q.push_back(fetched);
            fetched_any = true;
            if break_after {
                break;
            }
        }
        if fetched_any {
            self.fetch_stall_until = self.cycle + 1 + u64::from(group_stall);
        }
        fetched_any
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::translate::NullTranslator;
    use cfr_workload::{generate, GeneratorParams, LaidProgram};

    fn laid() -> LaidProgram {
        let prog = generate(&GeneratorParams::small_test());
        LaidProgram::lay_out(&prog, PageGeometry::default_4k(), false)
    }

    fn run_for(laid: &LaidProgram, n: u64) -> CpuStats {
        let mut pipe = Pipeline::new(laid, CpuConfig::default_config(), 42);
        let mut t = NullTranslator::default();
        pipe.run(&mut t, n);
        *pipe.stats()
    }

    #[test]
    fn compiled_backend_matches_interpreter_exactly() {
        // The tentpole invariant: the pre-decoded trace backend is a pure
        // representation change — every statistic the interpreter backend
        // produces must match bit-for-bit, plain and instrumented alike.
        for instrumented in [false, true] {
            let prog = generate(&GeneratorParams::small_test());
            let p = LaidProgram::lay_out(&prog, PageGeometry::default_4k(), instrumented);
            let trace = cfr_workload::compile_trace(&p);
            let mut interp = Pipeline::new(&p, CpuConfig::default_config(), 42);
            let mut ti = NullTranslator::default();
            interp.run(&mut ti, 30_000);
            let mut compiled = Pipeline::compiled(&trace, CpuConfig::default_config(), 42);
            let mut tc = NullTranslator::default();
            compiled.run(&mut tc, 30_000);
            assert_eq!(
                interp.stats(),
                compiled.stats(),
                "backends diverged (instrumented = {instrumented})"
            );
            assert_eq!(interp.cycle(), compiled.cycle());
        }
    }

    #[test]
    fn commits_exactly_requested() {
        let p = laid();
        let s = run_for(&p, 20_000);
        assert_eq!(s.committed, 20_000);
        assert!(s.cycles > 0);
    }

    #[test]
    fn ipc_is_physical() {
        let p = laid();
        let s = run_for(&p, 20_000);
        let ipc = s.ipc();
        assert!(ipc > 0.1, "pipeline far too slow: IPC {ipc}");
        assert!(ipc <= 4.0, "IPC cannot exceed commit width: {ipc}");
    }

    #[test]
    fn deterministic_across_runs() {
        let p = laid();
        let a = run_for(&p, 10_000);
        let b = run_for(&p, 10_000);
        assert_eq!(a, b);
    }

    #[test]
    fn sliced_run_is_transparent() {
        // A single process chopped into quantum slices (with nothing
        // happening between slices) must be indistinguishable from one
        // uninterrupted run: `run_slice` freezes and resumes the pipeline
        // exactly, so every statistic — cycles included — is identical.
        let p = laid();
        let whole = run_for(&p, 15_000);
        for quantum in [1u64, 7, 100, 4096] {
            let mut pipe = Pipeline::new(&p, CpuConfig::default_config(), 42);
            let mut t = NullTranslator::default();
            let mut slices = 0u64;
            loop {
                let end = pipe.cycle().saturating_add(quantum);
                slices += 1;
                if pipe.run_slice(&mut t, 15_000, end) == SliceEnd::Finished {
                    break;
                }
            }
            pipe.finalize_stats();
            assert_eq!(*pipe.stats(), whole, "quantum {quantum} diverged");
            assert!(slices > 1, "quantum {quantum} never actually sliced");
        }
    }

    #[test]
    fn set_cycle_is_monotonic_and_charges_idle_time() {
        let p = laid();
        let mut pipe = Pipeline::new(&p, CpuConfig::default_config(), 42);
        let mut t = NullTranslator::default();
        pipe.run_slice(&mut t, 1_000, u64::MAX);
        let at = pipe.cycle();
        pipe.set_cycle(at + 500); // switched out for 500 cycles
        assert_eq!(pipe.cycle(), at + 500);
        pipe.set_cycle(at); // never backwards
        assert_eq!(pipe.cycle(), at + 500);
    }

    #[test]
    fn fault_latency_charges_faulting_data_accesses() {
        // Wire check for `CpuConfig::fault_latency`: a data access whose
        // dTLB translation protection-faults costs the handler latency on
        // top of the TLB penalty. The page is pre-allocated as *code* so
        // the data access (wanting read/write) faults.
        let p = laid();
        let addr = VirtAddr::new(0x3000_0000);
        let mut costs = [0u32; 2];
        for (i, fault_latency) in [0u32, 900].into_iter().enumerate() {
            let mut cfg = CpuConfig::default_config();
            cfg.fault_latency = fault_latency;
            let mut pipe = Pipeline::new(&p, cfg, 42);
            let vpn = pipe.geom.vpn(addr);
            pipe.page_table.translate(vpn, Protection::code());
            costs[i] = pipe.data_access(addr, AccessKind::Read);
            assert_eq!(pipe.dtlb.stats().protection_faults, 1);
        }
        assert_eq!(costs[1], costs[0] + 900, "handler latency not charged");
    }

    #[test]
    fn dyn_wrapper_matches_monomorphized_run() {
        // `run` is generic (monomorphized per translator); `run_dyn` is
        // the trait-object entry point for callers that only hold a
        // `&mut dyn FetchTranslator`. Both must drive the identical
        // simulation.
        let p = laid();
        let mut mono_pipe = Pipeline::new(&p, CpuConfig::default_config(), 42);
        let mut mono_t = NullTranslator::default();
        mono_pipe.run(&mut mono_t, 10_000);

        let mut dyn_pipe = Pipeline::new(&p, CpuConfig::default_config(), 42);
        let mut dyn_t = NullTranslator::default();
        let dyn_ref: &mut dyn FetchTranslator = &mut dyn_t;
        dyn_pipe.run_dyn(dyn_ref, 10_000);
        assert_eq!(dyn_pipe.stats(), mono_pipe.stats());
    }

    #[test]
    fn branches_and_mispredicts_counted() {
        let p = laid();
        let s = run_for(&p, 50_000);
        assert!(s.branches > 1000, "branches {}", s.branches);
        assert!(s.mispredicts > 0);
        assert!(s.mispredicts < s.branches);
        let acc = s.predictor_accuracy();
        assert!((0.5..1.0).contains(&acc), "accuracy {acc}");
    }

    #[test]
    fn wrong_path_fetches_happen() {
        let p = laid();
        let s = run_for(&p, 50_000);
        assert!(s.wrong_path_fetched > 0, "no speculative wrong-path fetch");
        // Wrong-path work is bounded by mispredicts x window.
        assert!(s.wrong_path_fetched < s.fetched);
    }

    #[test]
    fn memory_system_exercised() {
        let p = laid();
        let s = run_for(&p, 50_000);
        assert!(s.il1.accesses >= s.fetched);
        assert!(s.dl1.accesses > 0);
        assert!(s.dtlb.accesses > 0);
        assert!(s.loads + s.stores >= s.dl1.accesses);
    }

    #[test]
    fn page_crossings_match_functional_measure() {
        // The pipeline's architectural crossing counts must agree with the
        // functional walker's (same seed, same stream).
        let p = laid();
        let s = run_for(&p, 30_000);
        let f = cfr_workload::measure::measure(&p, 30_000, 42);
        let total_pipe = s.crossings();
        let total_func = f.crossings();
        // The pipeline counts at fetch; at most a window of drift remains
        // in flight at the end.
        let drift = (total_pipe as i64 - total_func as i64).unsigned_abs();
        assert!(
            drift <= 80,
            "crossings diverged: pipeline {total_pipe} vs functional {total_func}"
        );
    }

    #[test]
    fn higher_latency_translator_slows_the_core() {
        // A PI-PT-like translator that stalls every fetch group must cost
        // cycles vs the free translator.
        struct SlowTranslator(NullTranslator);
        impl FetchTranslator for SlowTranslator {
            fn addressing_mode(&self) -> cfr_types::AddressingMode {
                cfr_types::AddressingMode::PiPt
            }
            fn on_fetch(&mut self, ev: &FetchEvent, pt: &mut PageTable) -> TranslationOutcome {
                let mut o = self.0.on_il1_miss(ev, pt);
                o.stall = 1;
                o
            }
            fn on_il1_miss(&mut self, ev: &FetchEvent, pt: &mut PageTable) -> TranslationOutcome {
                self.0.on_il1_miss(ev, pt)
            }
            fn meter(&self) -> &cfr_energy::EnergyMeter {
                self.0.meter()
            }
            fn itlb_stats(&self) -> cfr_mem::TlbStats {
                cfr_mem::TlbStats::default()
            }
            fn name(&self) -> &'static str {
                "slow"
            }
        }
        let p = laid();
        let mut fast_pipe = Pipeline::new(&p, CpuConfig::default_config(), 42);
        let mut fast = NullTranslator::default();
        fast_pipe.run(&mut fast, 20_000);
        let mut slow_pipe = Pipeline::new(&p, CpuConfig::default_config(), 42);
        let mut slow = SlowTranslator(NullTranslator::default());
        slow_pipe.run(&mut slow, 20_000);
        assert!(
            slow_pipe.stats().cycles > fast_pipe.stats().cycles,
            "serial translation latency must cost cycles: {} vs {}",
            slow_pipe.stats().cycles,
            fast_pipe.stats().cycles
        );
    }

    #[test]
    fn instrumented_layout_commits_boundary_branches() {
        let prog = generate(&GeneratorParams::small_test());
        let p = LaidProgram::lay_out(&prog, PageGeometry::default_4k(), true);
        let s = run_for(&p, 100_000);
        // small_test programs are compact; boundary branches exist but may
        // be cold. At minimum the counter must be consistent.
        assert!(s.boundary_branches <= s.committed);
    }

    #[test]
    fn smaller_il1_misses_more() {
        let p = laid();
        let mut small_cfg = CpuConfig::default_config();
        small_cfg.il1.organization.size_bytes = 512;
        let mut small_pipe = Pipeline::new(&p, small_cfg, 42);
        let mut t1 = NullTranslator::default();
        small_pipe.run(&mut t1, 20_000);
        let mut big_pipe = Pipeline::new(&p, CpuConfig::default_config(), 42);
        let mut t2 = NullTranslator::default();
        big_pipe.run(&mut t2, 20_000);
        assert!(
            small_pipe.stats().il1.miss_rate() > big_pipe.stats().il1.miss_rate(),
            "512B iL1 should miss more than 8KB"
        );
        assert!(small_pipe.stats().cycles > big_pipe.stats().cycles);
    }
}
