//! Core configuration (the paper's Table 1).

use cfr_mem::{CacheConfig, DramConfig, TlbConfig};
use cfr_types::PageGeometry;
use serde::{Deserialize, Serialize};

use crate::bpred::PredictorConfig;

/// Full processor configuration. [`CpuConfig::default_config`] reproduces
/// the paper's Table 1 exactly.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CpuConfig {
    /// RUU (register update unit / instruction window) size, instructions.
    pub ruu_size: usize,
    /// Load/store queue size, instructions.
    pub lsq_size: usize,
    /// Fetch queue size, instructions.
    pub fetch_queue: usize,
    /// Instructions fetched per cycle.
    pub fetch_width: usize,
    /// Instructions decoded (fetch queue → RUU) per cycle.
    pub decode_width: usize,
    /// Instructions issued per cycle (out of order).
    pub issue_width: usize,
    /// Instructions committed per cycle (in order).
    pub commit_width: usize,
    /// Integer ALUs.
    pub int_alu: u32,
    /// Integer multiply/divide units.
    pub int_mul: u32,
    /// FP ALUs.
    pub fp_alu: u32,
    /// FP multiply/divide units.
    pub fp_mul: u32,
    /// Branch predictor + BTB + RAS configuration.
    pub predictor: PredictorConfig,
    /// Minimum cycles between a mispredicted branch's resolution and the
    /// first corrected fetch (Table 1: 7).
    pub mispredict_penalty: u32,
    /// iL1 configuration.
    pub il1: CacheConfig,
    /// dL1 configuration.
    pub dl1: CacheConfig,
    /// Unified L2 configuration.
    pub l2: CacheConfig,
    /// dTLB configuration.
    pub dtlb: TlbConfig,
    /// DRAM configuration.
    pub dram: DramConfig,
    /// Page geometry (Table 1: 4 KB).
    pub geometry: PageGeometry,
    /// Cycles a faulting data access spends trapping to the OS handler
    /// (charged on top of the TLB penalty whenever the dTLB reports a
    /// protection fault). 0 — the default, and the paper's implicit
    /// setting — reproduces the fault-free cost model exactly: faults are
    /// still *counted*, they just cost nothing.
    pub fault_latency: u32,
}

impl CpuConfig {
    /// The paper's default configuration (Table 1).
    #[must_use]
    pub fn default_config() -> Self {
        Self {
            ruu_size: 64,
            lsq_size: 32,
            fetch_queue: 8,
            fetch_width: 4,
            decode_width: 4,
            issue_width: 4,
            commit_width: 4,
            int_alu: 4,
            int_mul: 1,
            fp_alu: 4,
            fp_mul: 1,
            predictor: PredictorConfig::default(),
            mispredict_penalty: 7,
            il1: CacheConfig::default_il1(),
            dl1: CacheConfig::default_dl1(),
            l2: CacheConfig::default_l2(),
            dtlb: TlbConfig::default_dtlb(),
            dram: DramConfig::default(),
            geometry: PageGeometry::default_4k(),
            fault_latency: 0,
        }
    }
}

impl Default for CpuConfig {
    fn default() -> Self {
        Self::default_config()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values() {
        let c = CpuConfig::default_config();
        assert_eq!(c.ruu_size, 64);
        assert_eq!(c.lsq_size, 32);
        assert_eq!(c.fetch_queue, 8);
        assert_eq!(
            (c.fetch_width, c.decode_width, c.issue_width, c.commit_width),
            (4, 4, 4, 4)
        );
        assert_eq!((c.int_alu, c.int_mul, c.fp_alu, c.fp_mul), (4, 1, 4, 1));
        assert_eq!(c.mispredict_penalty, 7);
        assert_eq!(c.il1.organization.size_bytes, 8 * 1024);
        assert_eq!(c.il1.organization.associativity, 1);
        assert_eq!(c.dl1.organization.associativity, 2);
        assert_eq!(c.l2.organization.size_bytes, 1024 * 1024);
        assert_eq!(c.dtlb.organization.entries, 128);
        assert_eq!(c.geometry.page_bytes(), 4096);
    }
}
