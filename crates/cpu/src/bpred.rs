//! Branch prediction: bimodal direction predictor, branch target buffer,
//! return-address stack (Table 1: bimodal, 1024-entry 2-way BTB).

use cfr_types::VirtAddr;
use cfr_workload::BranchKind;
use serde::{Deserialize, Serialize};

/// Predictor configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PredictorConfig {
    /// Bimodal table entries (2-bit counters); power of two.
    pub bimodal_entries: usize,
    /// BTB entries.
    pub btb_entries: usize,
    /// BTB ways.
    pub btb_ways: usize,
    /// Return-address stack depth.
    pub ras_depth: usize,
}

impl Default for PredictorConfig {
    fn default() -> Self {
        Self {
            bimodal_entries: 2048,
            btb_entries: 1024,
            btb_ways: 2,
            ras_depth: 8,
        }
    }
}

/// What the front end predicts for one branch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Prediction {
    /// Predicted direction.
    pub taken: bool,
    /// Predicted target if the structures supply one (BTB hit or RAS);
    /// `None` forces the fetch engine to fall through (a BTB miss behaves
    /// like a not-taken prediction).
    pub target: Option<VirtAddr>,
    /// Whether the BTB hit (IA's comparison point is the BTB output).
    pub btb_hit: bool,
}

/// 2-bit saturating bimodal table.
#[derive(Clone, Debug)]
struct Bimodal {
    counters: Vec<u8>,
}

impl Bimodal {
    fn new(entries: usize) -> Self {
        assert!(entries.is_power_of_two(), "bimodal size must be 2^k");
        Self {
            counters: vec![2; entries],
        }
    }

    #[inline]
    fn index(&self, pc: VirtAddr) -> usize {
        ((pc.raw() >> 2) as usize) & (self.counters.len() - 1)
    }

    fn predict(&self, pc: VirtAddr) -> bool {
        self.counters[self.index(pc)] >= 2
    }

    fn update(&mut self, pc: VirtAddr, taken: bool) {
        let i = self.index(pc);
        let c = &mut self.counters[i];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct BtbWay {
    tag: u64,
    target: VirtAddr,
    valid: bool,
    lru: u64,
}

/// Set-associative branch target buffer.
#[derive(Clone, Debug)]
pub struct Btb {
    ways: Vec<BtbWay>,
    assoc: usize,
    sets: usize,
    tick: u64,
}

impl Btb {
    /// Builds a BTB.
    ///
    /// # Panics
    ///
    /// Panics unless `entries` is a positive multiple of `assoc` and the set
    /// count is a power of two.
    #[must_use]
    pub fn new(entries: usize, assoc: usize) -> Self {
        assert!(
            entries > 0 && assoc > 0 && entries.is_multiple_of(assoc),
            "bad BTB shape"
        );
        let sets = entries / assoc;
        assert!(sets.is_power_of_two(), "BTB sets must be 2^k");
        Self {
            ways: vec![BtbWay::default(); entries],
            assoc,
            sets,
            tick: 0,
        }
    }

    #[inline]
    fn set_and_tag(&self, pc: VirtAddr) -> (usize, u64) {
        let key = pc.raw() >> 2;
        ((key as usize) % self.sets, key / self.sets as u64)
    }

    /// Looks up the predicted target for the branch at `pc`.
    pub fn lookup(&mut self, pc: VirtAddr) -> Option<VirtAddr> {
        self.tick += 1;
        let (set, tag) = self.set_and_tag(pc);
        let base = set * self.assoc;
        let ways = &mut self.ways[base..base + self.assoc];
        ways.iter_mut().find(|w| w.valid && w.tag == tag).map(|w| {
            w.lru = self.tick;
            w.target
        })
    }

    /// Installs/updates the target for the branch at `pc`.
    pub fn update(&mut self, pc: VirtAddr, target: VirtAddr) {
        self.tick += 1;
        let (set, tag) = self.set_and_tag(pc);
        let base = set * self.assoc;
        let ways = &mut self.ways[base..base + self.assoc];
        if let Some(w) = ways.iter_mut().find(|w| w.valid && w.tag == tag) {
            w.target = target;
            w.lru = self.tick;
            return;
        }
        let victim = ways
            .iter_mut()
            .min_by_key(|w| if w.valid { w.lru + 1 } else { 0 })
            .expect("BTB has ways");
        *victim = BtbWay {
            tag,
            target,
            valid: true,
            lru: self.tick,
        };
    }
}

/// Return-address stack.
#[derive(Clone, Debug)]
pub struct ReturnAddressStack {
    stack: Vec<VirtAddr>,
    depth: usize,
}

impl ReturnAddressStack {
    /// Creates a RAS of the given depth.
    #[must_use]
    pub fn new(depth: usize) -> Self {
        Self {
            stack: Vec::with_capacity(depth),
            depth,
        }
    }

    /// Pushes a return address (on a call fetch); overwrites the bottom on
    /// overflow, as real hardware does.
    pub fn push(&mut self, addr: VirtAddr) {
        if self.stack.len() == self.depth {
            self.stack.remove(0);
        }
        self.stack.push(addr);
    }

    /// Pops the predicted return target.
    pub fn pop(&mut self) -> Option<VirtAddr> {
        self.stack.pop()
    }

    /// Current depth.
    #[must_use]
    pub fn len(&self) -> usize {
        self.stack.len()
    }

    /// Whether the stack is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.stack.is_empty()
    }
}

/// The composite front-end predictor.
#[derive(Clone, Debug)]
pub struct BranchPredictor {
    bimodal: Bimodal,
    btb: Btb,
    ras: ReturnAddressStack,
}

impl BranchPredictor {
    /// Builds the predictor from its configuration.
    #[must_use]
    pub fn new(cfg: PredictorConfig) -> Self {
        Self {
            bimodal: Bimodal::new(cfg.bimodal_entries),
            btb: Btb::new(cfg.btb_entries, cfg.btb_ways),
            ras: ReturnAddressStack::new(cfg.ras_depth),
        }
    }

    /// Predicts the branch at `pc`. `fallthrough` is `pc + 4` (pushed on
    /// calls). Mutates the RAS speculatively; the fetch engine only calls
    /// this on the paths it actually follows.
    #[inline]
    pub fn predict(&mut self, pc: VirtAddr, kind: BranchKind, fallthrough: VirtAddr) -> Prediction {
        match kind {
            BranchKind::Conditional { .. } => {
                let taken = self.bimodal.predict(pc);
                let target = self.btb.lookup(pc);
                Prediction {
                    taken: taken && target.is_some(),
                    btb_hit: target.is_some(),
                    target,
                }
            }
            BranchKind::Jump => {
                let target = self.btb.lookup(pc);
                Prediction {
                    taken: target.is_some(),
                    btb_hit: target.is_some(),
                    target,
                }
            }
            BranchKind::Call => {
                let target = self.btb.lookup(pc);
                self.ras.push(fallthrough);
                Prediction {
                    taken: target.is_some(),
                    btb_hit: target.is_some(),
                    target,
                }
            }
            BranchKind::IndirectCall => {
                let target = self.btb.lookup(pc);
                self.ras.push(fallthrough);
                Prediction {
                    taken: target.is_some(),
                    btb_hit: target.is_some(),
                    target,
                }
            }
            BranchKind::Return => {
                let btb_hit = self.btb.lookup(pc).is_some();
                let target = self.ras.pop();
                Prediction {
                    taken: target.is_some(),
                    btb_hit,
                    target,
                }
            }
            BranchKind::IndirectJump => {
                let target = self.btb.lookup(pc);
                Prediction {
                    taken: target.is_some(),
                    btb_hit: target.is_some(),
                    target,
                }
            }
        }
    }

    /// Trains the predictor with a resolved (right-path) branch.
    #[inline]
    pub fn update(&mut self, pc: VirtAddr, kind: BranchKind, taken: bool, target: VirtAddr) {
        if kind.conditional() {
            self.bimodal.update(pc, taken);
        }
        if taken && kind != BranchKind::Return {
            self.btb.update(pc, target);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cond_kind() -> BranchKind {
        BranchKind::Conditional { taken_bias: 0.9 }
    }

    #[test]
    fn btb_learns_targets() {
        let mut btb = Btb::new(1024, 2);
        let pc = VirtAddr::new(0x1000);
        assert_eq!(btb.lookup(pc), None);
        btb.update(pc, VirtAddr::new(0x2000));
        assert_eq!(btb.lookup(pc), Some(VirtAddr::new(0x2000)));
        btb.update(pc, VirtAddr::new(0x3000));
        assert_eq!(btb.lookup(pc), Some(VirtAddr::new(0x3000)));
    }

    #[test]
    fn btb_two_way_conflicts() {
        let mut btb = Btb::new(2, 2); // one set, two ways
        btb.update(VirtAddr::new(0x10), VirtAddr::new(1));
        btb.update(VirtAddr::new(0x20), VirtAddr::new(2));
        assert!(btb.lookup(VirtAddr::new(0x10)).is_some());
        assert!(btb.lookup(VirtAddr::new(0x20)).is_some());
        btb.update(VirtAddr::new(0x30), VirtAddr::new(3)); // evicts LRU (0x10)
        assert_eq!(btb.lookup(VirtAddr::new(0x10)), None);
    }

    #[test]
    fn ras_predicts_matched_returns() {
        let mut ras = ReturnAddressStack::new(8);
        ras.push(VirtAddr::new(0x100));
        ras.push(VirtAddr::new(0x200));
        assert_eq!(ras.pop(), Some(VirtAddr::new(0x200)));
        assert_eq!(ras.pop(), Some(VirtAddr::new(0x100)));
        assert_eq!(ras.pop(), None);
    }

    #[test]
    fn ras_overflow_drops_oldest() {
        let mut ras = ReturnAddressStack::new(2);
        ras.push(VirtAddr::new(1));
        ras.push(VirtAddr::new(2));
        ras.push(VirtAddr::new(3));
        assert_eq!(ras.len(), 2);
        assert_eq!(ras.pop(), Some(VirtAddr::new(3)));
        assert_eq!(ras.pop(), Some(VirtAddr::new(2)));
        assert!(ras.is_empty());
    }

    #[test]
    fn composite_learns_a_jump() {
        let mut p = BranchPredictor::new(PredictorConfig::default());
        let pc = VirtAddr::new(0x400);
        let fall = VirtAddr::new(0x404);
        // Cold: BTB miss -> treated as not taken.
        let pred = p.predict(pc, BranchKind::Jump, fall);
        assert!(!pred.taken);
        p.update(pc, BranchKind::Jump, true, VirtAddr::new(0x900));
        let pred = p.predict(pc, BranchKind::Jump, fall);
        assert!(pred.taken);
        assert_eq!(pred.target, Some(VirtAddr::new(0x900)));
    }

    #[test]
    fn conditional_direction_trains() {
        let mut p = BranchPredictor::new(PredictorConfig::default());
        let pc = VirtAddr::new(0x800);
        let fall = VirtAddr::new(0x804);
        p.update(pc, cond_kind(), true, VirtAddr::new(0x1000));
        for _ in 0..3 {
            p.update(pc, cond_kind(), false, VirtAddr::new(0x1000));
        }
        assert!(!p.predict(pc, cond_kind(), fall).taken);
        for _ in 0..3 {
            p.update(pc, cond_kind(), true, VirtAddr::new(0x1000));
        }
        assert!(p.predict(pc, cond_kind(), fall).taken);
    }

    #[test]
    fn call_pushes_return_predicts() {
        let mut p = BranchPredictor::new(PredictorConfig::default());
        let call_pc = VirtAddr::new(0x100);
        let fall = VirtAddr::new(0x104);
        let callee = VirtAddr::new(0x4000);
        p.update(call_pc, BranchKind::Call, true, callee);
        let _ = p.predict(call_pc, BranchKind::Call, fall);
        // The return should now predict the call fall-through via the RAS.
        let ret_pred = p.predict(
            VirtAddr::new(0x4010),
            BranchKind::Return,
            VirtAddr::new(0x4014),
        );
        assert_eq!(ret_pred.target, Some(fall));
    }
}
