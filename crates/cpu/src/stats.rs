//! Pipeline statistics.

use cfr_mem::{CacheStats, TlbStats};
use serde::{Deserialize, Serialize};

/// Everything a run reports (Table 2's columns come from here).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CpuStats {
    /// Cycles simulated.
    pub cycles: u64,
    /// Instructions committed.
    pub committed: u64,
    /// Instructions fetched (right path).
    pub fetched: u64,
    /// Instructions fetched on mispredicted (wrong) paths — these still pay
    /// iTLB/iL1 energy, as in sim-outorder.
    pub wrong_path_fetched: u64,
    /// Right-path branches fetched.
    pub branches: u64,
    /// ... of which mispredicted (direction or target).
    pub mispredicts: u64,
    /// Committed boundary branches (SoCA/SoLA/IA instruction overhead).
    pub boundary_branches: u64,
    /// Page crossings caused by taken branches (Table 2 BRANCH).
    pub crossings_branch: u64,
    /// Sequential page crossings (Table 2 BOUNDARY; boundary-branch hops
    /// count here — they are the sequential crossing made explicit).
    pub crossings_boundary: u64,
    /// iL1 counters.
    pub il1: CacheStats,
    /// dL1 counters.
    pub dl1: CacheStats,
    /// Unified L2 counters.
    pub l2: CacheStats,
    /// dTLB counters.
    pub dtlb: TlbStats,
    /// Loads executed.
    pub loads: u64,
    /// Stores executed.
    pub stores: u64,
}

impl CpuStats {
    /// Instructions per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Branch prediction accuracy (Table 5).
    #[must_use]
    pub fn predictor_accuracy(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            1.0 - self.mispredicts as f64 / self.branches as f64
        }
    }

    /// Total page crossings.
    #[must_use]
    pub fn crossings(&self) -> u64 {
        self.crossings_branch + self.crossings_boundary
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_ratios() {
        let mut s = CpuStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.predictor_accuracy(), 0.0);
        s.cycles = 100;
        s.committed = 250;
        s.branches = 10;
        s.mispredicts = 1;
        s.crossings_branch = 7;
        s.crossings_boundary = 3;
        assert!((s.ipc() - 2.5).abs() < 1e-12);
        assert!((s.predictor_accuracy() - 0.9).abs() < 1e-12);
        assert_eq!(s.crossings(), 10);
    }
}
