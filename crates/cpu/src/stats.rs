//! Pipeline statistics.

use cfr_mem::{CacheStats, TlbStats};
use cfr_types::{RecordError, RecordReader, RecordWriter};
use serde::{Deserialize, Serialize};

/// Everything a run reports (Table 2's columns come from here).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CpuStats {
    /// Cycles simulated.
    pub cycles: u64,
    /// Instructions committed.
    pub committed: u64,
    /// Instructions fetched (right path).
    pub fetched: u64,
    /// Instructions fetched on mispredicted (wrong) paths — these still pay
    /// iTLB/iL1 energy, as in sim-outorder.
    pub wrong_path_fetched: u64,
    /// Right-path branches fetched.
    pub branches: u64,
    /// ... of which mispredicted (direction or target).
    pub mispredicts: u64,
    /// Committed boundary branches (SoCA/SoLA/IA instruction overhead).
    pub boundary_branches: u64,
    /// Page crossings caused by taken branches (Table 2 BRANCH).
    pub crossings_branch: u64,
    /// Sequential page crossings (Table 2 BOUNDARY; boundary-branch hops
    /// count here — they are the sequential crossing made explicit).
    pub crossings_boundary: u64,
    /// iL1 counters.
    pub il1: CacheStats,
    /// dL1 counters.
    pub dl1: CacheStats,
    /// Unified L2 counters.
    pub l2: CacheStats,
    /// dTLB counters.
    pub dtlb: TlbStats,
    /// Loads executed.
    pub loads: u64,
    /// Stores executed.
    pub stores: u64,
}

impl CpuStats {
    /// Instructions per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Branch prediction accuracy (Table 5).
    #[must_use]
    pub fn predictor_accuracy(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            1.0 - self.mispredicts as f64 / self.branches as f64
        }
    }

    /// Total page crossings.
    #[must_use]
    pub fn crossings(&self) -> u64 {
        self.crossings_branch + self.crossings_boundary
    }

    /// Serializes every counter, scalars first, then the nested cache/TLB
    /// stats in declaration order (persistent run store codec — the
    /// vendored `serde` is a no-op).
    pub fn to_record(&self, w: &mut RecordWriter) {
        w.token("cpustats");
        w.u64(self.cycles);
        w.u64(self.committed);
        w.u64(self.fetched);
        w.u64(self.wrong_path_fetched);
        w.u64(self.branches);
        w.u64(self.mispredicts);
        w.u64(self.boundary_branches);
        w.u64(self.crossings_branch);
        w.u64(self.crossings_boundary);
        self.il1.to_record(w);
        self.dl1.to_record(w);
        self.l2.to_record(w);
        self.dtlb.to_record(w);
        w.u64(self.loads);
        w.u64(self.stores);
    }

    /// Parses a [`Self::to_record`] stream.
    ///
    /// # Errors
    ///
    /// Errors on a malformed stream.
    pub fn from_record(r: &mut RecordReader<'_>) -> Result<Self, RecordError> {
        r.expect("cpustats")?;
        Ok(Self {
            cycles: r.u64()?,
            committed: r.u64()?,
            fetched: r.u64()?,
            wrong_path_fetched: r.u64()?,
            branches: r.u64()?,
            mispredicts: r.u64()?,
            boundary_branches: r.u64()?,
            crossings_branch: r.u64()?,
            crossings_boundary: r.u64()?,
            il1: CacheStats::from_record(r)?,
            dl1: CacheStats::from_record(r)?,
            l2: CacheStats::from_record(r)?,
            dtlb: TlbStats::from_record(r)?,
            loads: r.u64()?,
            stores: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_round_trips() {
        let mut s = CpuStats::default();
        // Fill every field with a distinct value so transposed fields fail.
        for (counter, field) in (1u64..).zip([
            &mut s.cycles,
            &mut s.committed,
            &mut s.fetched,
            &mut s.wrong_path_fetched,
            &mut s.branches,
            &mut s.mispredicts,
            &mut s.boundary_branches,
            &mut s.crossings_branch,
            &mut s.crossings_boundary,
            &mut s.il1.accesses,
            &mut s.il1.misses,
            &mut s.dl1.hits,
            &mut s.l2.writebacks,
            &mut s.dtlb.accesses,
            &mut s.dtlb.invalidations,
            &mut s.dtlb.protection_faults,
            &mut s.loads,
            &mut s.stores,
        ]) {
            *field = counter;
        }
        let mut w = RecordWriter::new();
        s.to_record(&mut w);
        let record = w.finish();
        let mut r = RecordReader::new(&record);
        assert_eq!(CpuStats::from_record(&mut r).unwrap(), s);
        r.finish().unwrap();
        // Truncation anywhere is an error, not a zero-filled struct.
        let truncated = &record[..record.len() / 2];
        assert!(CpuStats::from_record(&mut RecordReader::new(truncated)).is_err());
    }

    #[test]
    fn derived_ratios() {
        let mut s = CpuStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.predictor_accuracy(), 0.0);
        s.cycles = 100;
        s.committed = 250;
        s.branches = 10;
        s.mispredicts = 1;
        s.crossings_branch = 7;
        s.crossings_boundary = 3;
        assert!((s.ipc() - 2.5).abs() < 1e-12);
        assert!((s.predictor_accuracy() - 0.9).abs() < 1e-12);
        assert_eq!(s.crossings(), 10);
    }
}
