//! Fixed-capacity ring buffer for the pipeline's queues.

/// A bounded deque over a power-of-two buffer.
///
/// The pipeline's queues (fetch queue, RUU hot/cold arrays) are bounded
/// by configuration and indexed on every cycle, which makes `VecDeque` a
/// poor fit: its capacity is not guaranteed to be a power of two, so each
/// element access pays a wrap *branch* rather than a mask. `Ring` fixes
/// the capacity at construction (rounded up to a power of two) so every
/// logical→physical index translation is a single AND.
///
/// `T: Copy` keeps the implementation entirely safe Rust: the buffer is
/// pre-filled with a caller-supplied fill value and popped slots simply
/// hold stale copies — nothing is ever dropped or uninitialized.
#[derive(Clone, Debug)]
pub(crate) struct Ring<T> {
    buf: Box<[T]>,
    /// `capacity - 1`; capacity is a power of two.
    mask: usize,
    /// Physical index of the logical front element.
    head: usize,
    len: usize,
}

impl<T: Copy> Ring<T> {
    /// A ring holding at least `cap` elements, pre-filled with `fill`
    /// (an arbitrary placeholder — never observable through the API).
    pub fn with_capacity(cap: usize, fill: T) -> Self {
        let size = cap.max(1).next_power_of_two();
        Self {
            buf: vec![fill; size].into_boxed_slice(),
            mask: size - 1,
            head: 0,
            len: 0,
        }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    #[cfg(test)]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    pub fn front(&self) -> Option<&T> {
        (self.len > 0).then(|| &self.buf[self.head])
    }

    /// Appends to the tail. The caller keeps `len()` under the configured
    /// queue limit (always ≤ capacity); overflowing is a logic error.
    #[inline]
    pub fn push_back(&mut self, value: T) {
        debug_assert!(self.len <= self.mask, "ring overflow");
        self.buf[(self.head + self.len) & self.mask] = value;
        self.len += 1;
    }

    /// Removes the front element without copying it out — for callers
    /// that already read what they need through [`Ring::front`].
    #[inline]
    pub fn drop_front(&mut self) {
        debug_assert!(self.len > 0, "drop_front on empty ring");
        self.head = (self.head + 1) & self.mask;
        self.len -= 1;
    }

    #[cfg(test)]
    pub fn pop_front(&mut self) -> Option<T> {
        if self.len == 0 {
            return None;
        }
        let value = self.buf[self.head];
        self.drop_front();
        Some(value)
    }

    #[inline]
    pub fn back(&self) -> Option<&T> {
        (self.len > 0).then(|| &self.buf[(self.head + self.len - 1) & self.mask])
    }

    #[inline]
    pub fn pop_back(&mut self) -> Option<T> {
        if self.len == 0 {
            return None;
        }
        self.len -= 1;
        Some(self.buf[(self.head + self.len) & self.mask])
    }

    #[inline]
    pub fn clear(&mut self) {
        self.head = 0;
        self.len = 0;
    }
}

impl<T: Copy> std::ops::Index<usize> for Ring<T> {
    type Output = T;
    #[inline]
    fn index(&self, i: usize) -> &T {
        debug_assert!(
            i < self.len,
            "ring index {i} out of bounds (len {})",
            self.len
        );
        &self.buf[(self.head + i) & self.mask]
    }
}

impl<T: Copy> std::ops::IndexMut<usize> for Ring<T> {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut T {
        debug_assert!(
            i < self.len,
            "ring index {i} out of bounds (len {})",
            self.len
        );
        &mut self.buf[(self.head + i) & self.mask]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_with_wraparound() {
        let mut r = Ring::with_capacity(3, 0u32); // rounds up to 4
        assert!(r.is_empty());
        assert_eq!(r.front(), None);
        // Cycle enough values through to wrap the physical buffer twice.
        let mut next_in = 0u32;
        let mut next_out = 0u32;
        for _ in 0..5 {
            while r.len() < 3 {
                r.push_back(next_in);
                next_in += 1;
            }
            assert_eq!(r.front(), Some(&next_out));
            while let Some(v) = r.pop_front() {
                assert_eq!(v, next_out);
                next_out += 1;
            }
        }
        assert_eq!(next_in, next_out);
    }

    #[test]
    fn pop_back_and_indexing() {
        let mut r = Ring::with_capacity(4, 0u32);
        // Offset the head so logical and physical indices differ.
        r.push_back(99);
        r.pop_front();
        for v in [10, 20, 30] {
            r.push_back(v);
        }
        assert_eq!(r[0], 10);
        assert_eq!(r[2], 30);
        assert_eq!(r.back(), Some(&30));
        r[1] = 21;
        assert_eq!(r.pop_back(), Some(30));
        assert_eq!(r.pop_back(), Some(21));
        assert_eq!(r.pop_back(), Some(10));
        assert_eq!(r.pop_back(), None);
    }

    #[test]
    fn clear_resets_to_empty() {
        let mut r = Ring::with_capacity(2, 7u8);
        r.push_back(1);
        r.push_back(2);
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.pop_front(), None);
        r.push_back(3);
        assert_eq!(r.front(), Some(&3));
    }
}
