//! # cfr-cpu
//!
//! A cycle-level, trace-driven out-of-order processor core in the
//! SimpleScalar `sim-outorder` mold — the substrate the paper ran its
//! evaluation on (its Table 1 is this crate's
//! [`CpuConfig::default_config`]).
//!
//! The core models: a fetch engine with an 8-entry fetch queue that breaks
//! on predicted-taken branches and stalls on iL1 misses; bimodal + BTB + RAS
//! branch prediction with wrong-path fetch until branch resolution; a
//! 64-entry RUU and 32-entry LSQ with 4-wide out-of-order issue over the
//! paper's functional-unit mix; and 4-wide in-order commit.
//!
//! The *translation path* of the fetch engine is abstracted behind the
//! [`FetchTranslator`] trait: each of the paper's strategies (Base, OPT,
//! HoA, SoCA, SoLA, IA — implemented in `cfr-core`) plugs in there and
//! decides, per fetch, whether the iTLB is accessed, what it costs in
//! energy, and whether serial latency is added (PI-PT's critical path,
//! VI-VT's miss path).
//!
//! ```
//! use cfr_cpu::{CpuConfig, NullTranslator, Pipeline};
//! use cfr_types::PageGeometry;
//! use cfr_workload::{GeneratorParams, LaidProgram};
//!
//! let prog = cfr_workload::generate(&GeneratorParams::small_test());
//! let laid = LaidProgram::lay_out(&prog, PageGeometry::default_4k(), false);
//! let mut pipe = Pipeline::new(&laid, CpuConfig::default_config(), 7);
//! let mut xlate = NullTranslator::default();
//! pipe.run(&mut xlate, 10_000);
//! assert_eq!(pipe.stats().committed, 10_000);
//! assert!(pipe.stats().cycles > 2_500, "IPC can't exceed the 4-wide core");
//! ```

mod backend;
mod bpred;
mod config;
mod pipeline;
mod ring;
mod stats;
mod translate;

pub use backend::{CompiledBackend, ExecutionBackend, InterpBackend, LookupBatch};
pub use bpred::{BranchPredictor, Btb, Prediction, PredictorConfig, ReturnAddressStack};
pub use config::CpuConfig;
pub use pipeline::{Pipeline, SliceEnd};
pub use stats::CpuStats;
pub use translate::{FetchEvent, FetchKind, FetchTranslator, NullTranslator, TranslationOutcome};
