//! Quickstart: run one benchmark under the base configuration and under IA,
//! and print the headline comparison the paper makes.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cfr_sim::core::{Engine, ExperimentScale, RunKey, StrategyKind};
use cfr_sim::types::AddressingMode;
use cfr_sim::workload::profiles;

fn main() {
    let profile = profiles::mesa();
    let scale = ExperimentScale {
        max_commits: 500_000,
        seed: 0x5EED,
    };

    println!(
        "workload: {} ({} committed instructions)\n",
        profile.name, scale.max_commits
    );

    // Both runs execute in parallel on the shared engine, backed by the
    // machine-wide artifact store: a second invocation simulates nothing.
    let engine = Engine::with_default_store();
    let reports = engine.run_many(&[
        RunKey::new(
            profile.name,
            &scale,
            StrategyKind::Base,
            AddressingMode::ViPt,
        ),
        RunKey::new(profile.name, &scale, StrategyKind::Ia, AddressingMode::ViPt),
    ]);
    let (base, ia) = (&reports[0], &reports[1]);

    println!("VI-PT iL1, 32-entry fully-associative iTLB:");
    println!(
        "  base: {:>12} iTLB accesses, {:.6} mJ, {} cycles",
        base.itlb.accesses,
        base.itlb_energy_mj(),
        base.cycles
    );
    println!(
        "  IA:   {:>12} iTLB accesses, {:.6} mJ, {} cycles",
        ia.itlb.accesses,
        ia.itlb_energy_mj(),
        ia.cycles
    );
    println!(
        "\nIA keeps the current page's translation in the CFR and avoids {:.1}% of",
        100.0 * (1.0 - ia.itlb.accesses as f64 / base.itlb.accesses as f64)
    );
    println!(
        "iTLB accesses, cutting iTLB energy to {:.2}% of base — the paper reports",
        100.0 * ia.energy_vs(base)
    );
    println!("3.8% on average across its six benchmarks (Figure 4, top).");

    println!("\nTranslation-path energy breakdown for IA:");
    println!("{}", ia.energy);

    // Per-namespace store accounting on stderr (stdout stays byte-stable
    // across cold and warm invocations).
    eprintln!("{}", engine.summary_line());
}
