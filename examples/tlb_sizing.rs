//! iTLB sizing study (the paper's §4.3 argument): with the CFR, a *large*
//! iTLB costs almost nothing in energy because it leaves the common case —
//! so you can buy its miss-rate benefits for free.
//!
//! ```sh
//! cargo run --release --example tlb_sizing
//! ```

use cfr_sim::core::{Engine, ExperimentScale, ItlbChoice, RunKey, StrategyKind};
use cfr_sim::types::{AddressingMode, TlbOrganization};
use cfr_sim::workload::profiles;

fn main() {
    let profile = profiles::crafty();
    let scale = ExperimentScale {
        max_commits: 400_000,
        seed: 0x5EED,
    };
    let engine = Engine::with_default_store();

    println!(
        "iTLB sizing under base vs IA — {} (VI-PT, {} instructions)\n",
        profile.name, scale.max_commits
    );
    println!(
        "{:<14} {:>16} {:>16} {:>12} {:>12}",
        "iTLB", "base energy mJ", "IA energy mJ", "base cycles", "IA cycles"
    );
    for (label, org) in [
        ("1-entry", TlbOrganization::fully_associative(1)),
        ("8 FA", TlbOrganization::fully_associative(8)),
        ("16 2-way", TlbOrganization::set_associative(16, 2)),
        ("32 FA", TlbOrganization::fully_associative(32)),
        ("128 FA", TlbOrganization::fully_associative(128)),
    ] {
        let itlb = ItlbChoice::Mono(org);
        let reports = engine.run_many(&[
            RunKey::new(
                profile.name,
                &scale,
                StrategyKind::Base,
                AddressingMode::ViPt,
            )
            .with_itlb(itlb),
            RunKey::new(profile.name, &scale, StrategyKind::Ia, AddressingMode::ViPt)
                .with_itlb(itlb),
        ]);
        let (base, ia) = (&reports[0], &reports[1]);
        println!(
            "{:<14} {:>16.6} {:>16.6} {:>12} {:>12}",
            label,
            base.itlb_energy_mj(),
            ia.itlb_energy_mj(),
            base.cycles,
            ia.cycles
        );
    }
    println!("\nUnder base, energy scales with the structure you touch every fetch.");
    println!("Under IA the iTLB is touched only at page changes, so growing it from");
    println!("1 to 128 entries barely moves energy while cycles improve — the paper's");
    println!("\"work very well with large iTLB structures\" claim.");

    // Per-namespace store accounting on stderr (stdout stays byte-stable
    // across cold and warm invocations).
    eprintln!("{}", engine.summary_line());
}
