//! OS-support demonstration (paper §3.2): the CFR across context switches
//! and page evictions/remaps.
//!
//! The CFR is supervisor-owned state. This example drives a `Strategy`
//! directly (without the pipeline) to show the three OS interactions:
//! save/invalidate on a context switch, shoot-down on page eviction, and
//! the protection bits travelling with the translation.
//!
//! ```sh
//! cargo run --release --example os_interaction
//! ```

use cfr_sim::core::{Engine, Strategy, StrategyKind};
use cfr_sim::cpu::{FetchEvent, FetchKind, FetchTranslator};
use cfr_sim::energy::EnergyModel;
use cfr_sim::mem::{PageTable, TlbConfig};
use cfr_sim::types::{AddressingMode, PageGeometry, VirtAddr};

fn fetch_at(pc: u64) -> FetchEvent {
    FetchEvent {
        pc: VirtAddr::new(pc),
        kind: FetchKind::Sequential {
            page_crossed: false,
        },
        wrong_path: false,
    }
}

fn main() {
    let geom = PageGeometry::default_4k();
    let mut strategy = Strategy::new(
        StrategyKind::Ia,
        AddressingMode::ViPt,
        geom,
        TlbConfig::default_itlb(),
        EnergyModel::default(),
    );
    let mut pt = PageTable::new();

    // 1. Normal operation: first fetch establishes the CFR; later fetches
    //    on the page ride it.
    for i in 0..100 {
        strategy.on_fetch(&fetch_at(0x40_0000 + i * 4), &mut pt);
    }
    println!(
        "after 100 same-page fetches: {} iTLB accesses, CFR holds vpn {}",
        strategy.itlb_stats().accesses,
        strategy.cfr().vpn()
    );

    // 2. Context switch: the OS saves and invalidates the CFR; the next
    //    fetch re-establishes it through the iTLB.
    strategy.on_context_switch();
    println!(
        "after context switch: CFR valid = {}",
        strategy.cfr().is_valid()
    );
    strategy.on_fetch(&fetch_at(0x40_0190), &mut pt);
    println!(
        "first fetch back: {} iTLB accesses (one more), CFR valid = {}",
        strategy.itlb_stats().accesses,
        strategy.cfr().is_valid()
    );

    // 3. Page eviction: remapping the current page shoots down both the
    //    iTLB entry and the CFR, so the stale frame can never be used.
    let vpn = geom.vpn(VirtAddr::new(0x40_0190));
    let old = pt.probe(vpn).expect("mapped").0;
    let new = pt.remap(vpn).expect("remap");
    strategy.on_page_evicted(vpn);
    println!("\npage {vpn} remapped: frame {old} -> {new}");
    let out = strategy.on_fetch(&fetch_at(0x40_0194), &mut pt);
    println!(
        "next fetch translates to frame {} (fresh, via iTLB miss + walk, stall {} cycles)",
        out.pfn.expect("translated"),
        out.stall
    );

    // 4. Protection bits travel with the CFR.
    println!(
        "\nCFR protection bits: {} (code pages are r-x; the program cannot",
        strategy.cfr().prot()
    );
    println!("alter them without a supervisor-mode round trip)");

    // This example drives the Strategy directly, so it computes nothing
    // through the engine — the summary below is all-zero by design and
    // printed for parity with the other examples (every binary reports
    // its per-namespace store traffic on stderr).
    eprintln!("{}", Engine::with_default_store().summary_line());
}
