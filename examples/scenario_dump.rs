//! Regenerates the golden scenario records that
//! `tests/scenario_golden.rs` pins.
//!
//! Prints one `store_key` / `ScenarioReport::to_record` pair per golden
//! scenario, in the fixed order the test expects. Run it only to
//! *refresh* the goldens after an intentional model change; the records
//! are backend-invariant (interp and compiled agree field-for-field, as
//! `tests/scenario_differential.rs` proves), so one dump covers both
//! `CFR_BACKEND` values.
//!
//! ```sh
//! cargo run --release --example scenario_dump
//! ```

use cfr_sim::core::{
    Engine, ExperimentScale, ScenarioConfig, ScenarioProc, StrategyKind, TlbMode, QUANTUM_INFINITE,
};
use cfr_sim::types::{AddressingMode, RecordWriter};

/// The fixed scenario set: both TLB modes under preemption with every OS
/// penalty live, plus a solo infinite-quantum fault-latency-0 cell that
/// must stay byte-identical to the plain engine path.
#[must_use]
pub fn golden_scenarios() -> Vec<ScenarioConfig> {
    let scale = ExperimentScale {
        max_commits: 20_000,
        seed: 0x5EED,
    };
    let mix = || {
        vec![
            ScenarioProc::new("177.mesa"),
            ScenarioProc::new("254.gap").with_page_bytes(2 * 1024 * 1024),
        ]
    };
    let preempted = |tlb_mode: TlbMode, asid_count: u16| {
        let mut cfg = ScenarioConfig::new(mix(), scale, StrategyKind::Ia, AddressingMode::ViPt);
        cfg.quantum = 6_000;
        cfg.tlb_mode = tlb_mode;
        cfg.asid_count = asid_count;
        cfg.switch_penalty = 400;
        cfg.shootdown_per_entry = 2;
        cfg.fault_latency = 300;
        cfg.demand_fault_penalty = 800;
        cfg
    };
    let mut solo = ScenarioConfig::new(
        vec![ScenarioProc::new("177.mesa")],
        scale,
        StrategyKind::Ia,
        AddressingMode::ViPt,
    );
    solo.quantum = QUANTUM_INFINITE;
    vec![
        preempted(TlbMode::Asid, 2),
        preempted(TlbMode::Flush, 1),
        solo,
    ]
}

fn main() {
    // No store: the goldens must come from real simulations every time.
    let engine = Engine::new();
    let cfgs = golden_scenarios();
    let reports = engine.run_scenarios(&cfgs);
    for (cfg, report) in cfgs.iter().zip(&reports) {
        let mut rw = RecordWriter::new();
        report.to_record(&mut rw);
        println!("KEY {}", cfg.store_key());
        println!("REPORT {}", rw.finish());
    }
}
