//! Design-space walk: the paper's §5 argument that the CFR "removes the
//! iTLB power consumption from being an issue for iL1 design".
//!
//! Runs one benchmark across all three iL1 addressing modes, base vs IA,
//! and prints the energy/cycles frontier — showing PI-PT (normally
//! dismissed) becomes competitive once IA hides the iTLB.
//!
//! ```sh
//! cargo run --release --example cache_design_space
//! ```

use cfr_sim::core::{Engine, ExperimentScale, RunKey, StrategyKind};
use cfr_sim::types::AddressingMode;
use cfr_sim::workload::profiles;

fn main() {
    let profile = profiles::vortex();
    let scale = ExperimentScale {
        max_commits: 400_000,
        seed: 0x5EED,
    };
    let engine = Engine::with_default_store();

    println!(
        "iL1 addressing design space — {} ({} instructions)\n",
        profile.name, scale.max_commits
    );
    println!(
        "{:<8} {:<6} {:>14} {:>12} {:>10}",
        "iL1", "scheme", "iTLB energy mJ", "cycles", "IPC"
    );

    let keys: Vec<RunKey> = AddressingMode::ALL
        .into_iter()
        .flat_map(|mode| {
            [StrategyKind::Base, StrategyKind::Ia]
                .map(|kind| RunKey::new(profile.name, &scale, kind, mode))
        })
        .collect();
    for (key, r) in keys.iter().zip(engine.run_many(&keys)) {
        println!(
            "{:<8} {:<6} {:>14.6} {:>12} {:>10.2}",
            key.mode.to_string(),
            key.strategy.name(),
            r.itlb_energy_mj(),
            r.cycles,
            r.cpu.ipc(),
        );
    }

    println!("\nThe paper's take-away (Table 8): base PI-PT pays a serial iTLB lookup on");
    println!("every fetch group and is much slower; with IA the CFR supplies the frame");
    println!("directly and PI-PT returns to within a few percent of VI-PT — at a");
    println!("fraction of the energy, and without VI-VT's write-back complications.");

    // Per-namespace store accounting on stderr (stdout stays byte-stable
    // across cold and warm invocations).
    eprintln!("{}", engine.summary_line());
}
