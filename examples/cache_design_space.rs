//! Design-space walk: the paper's §5 argument that the CFR "removes the
//! iTLB power consumption from being an issue for iL1 design".
//!
//! Runs one benchmark across all three iL1 addressing modes, base vs IA,
//! and prints the energy/cycles frontier — showing PI-PT (normally
//! dismissed) becomes competitive once IA hides the iTLB.
//!
//! ```sh
//! cargo run --release --example cache_design_space
//! ```

use cfr_sim::core::{SimConfig, Simulator, StrategyKind};
use cfr_sim::types::AddressingMode;
use cfr_sim::workload::profiles;

fn main() {
    let profile = profiles::vortex();
    let mut cfg = SimConfig::default_config();
    cfg.max_commits = 400_000;

    println!(
        "iL1 addressing design space — {} ({} instructions)\n",
        profile.name, cfg.max_commits
    );
    println!(
        "{:<8} {:<6} {:>14} {:>12} {:>10}",
        "iL1", "scheme", "iTLB energy mJ", "cycles", "IPC"
    );

    let mut reference_cycles = None;
    for mode in AddressingMode::ALL {
        for kind in [StrategyKind::Base, StrategyKind::Ia] {
            let r = Simulator::run_profile(&profile, &cfg, kind, mode);
            if reference_cycles.is_none() {
                reference_cycles = Some(r.cycles);
            }
            println!(
                "{:<8} {:<6} {:>14.6} {:>12} {:>10.2}",
                mode.to_string(),
                kind.name(),
                r.itlb_energy_mj(),
                r.cycles,
                r.cpu.ipc(),
            );
        }
    }

    println!(
        "\nThe paper's take-away (Table 8): base PI-PT pays a serial iTLB lookup on"
    );
    println!("every fetch group and is much slower; with IA the CFR supplies the frame");
    println!("directly and PI-PT returns to within a few percent of VI-PT — at a");
    println!("fraction of the energy, and without VI-VT's write-back complications.");
}
