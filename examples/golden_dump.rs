//! Regenerates the golden run records that `tests/golden_output.rs` pins.
//!
//! Prints one `RunReport::to_record` line per golden key, in the fixed
//! order the test expects. Run it only to *refresh* the goldens after an
//! intentional model change (a change to simulated cycles, energy, or any
//! counter); a hot-path optimization must never need to — the whole point
//! of the pinned records is that optimizations keep every field
//! bit-identical.
//!
//! ```sh
//! cargo run --release --example golden_dump
//! ```

use cfr_sim::core::{Engine, ItlbChoice, RunKey, StrategyKind};
use cfr_sim::types::{AddressingMode, RecordWriter, TlbOrganization};

/// The fixed key set: every addressing mode, a spread of strategies, a
/// two-level iTLB, and both config overrides, across two benchmarks.
#[must_use]
pub fn golden_keys() -> Vec<RunKey> {
    let scale = cfr_sim::core::ExperimentScale {
        max_commits: 60_000,
        seed: 0x5EED,
    };
    vec![
        RunKey::new("177.mesa", &scale, StrategyKind::Base, AddressingMode::ViPt),
        RunKey::new("177.mesa", &scale, StrategyKind::Ia, AddressingMode::ViPt),
        RunKey::new("177.mesa", &scale, StrategyKind::HoA, AddressingMode::PiPt),
        RunKey::new("254.gap", &scale, StrategyKind::SoLA, AddressingMode::ViVt),
        RunKey::new("254.gap", &scale, StrategyKind::Opt, AddressingMode::ViPt).with_itlb(
            ItlbChoice::TwoLevel(
                TlbOrganization::fully_associative(1),
                TlbOrganization::fully_associative(32),
                1,
            ),
        ),
        RunKey::new("254.gap", &scale, StrategyKind::SoCA, AddressingMode::ViPt)
            .with_il1_bytes(2048)
            .with_page_bytes(16384),
    ]
}

fn main() {
    // No store: the goldens must come from real simulations every time.
    let engine = Engine::new();
    let keys = golden_keys();
    let reports = engine.run_many(&keys);
    for (key, report) in keys.iter().zip(&reports) {
        let mut kw = RecordWriter::new();
        key.to_record(&mut kw);
        let mut rw = RecordWriter::new();
        report.to_record(&mut rw);
        println!("KEY {}", kw.finish());
        println!("REPORT {}", rw.finish());
    }
}
