//! Integration tests of the networked store: engines running against a
//! live `StoreServer` daemon (the library core of `cfr-store-serve`),
//! the degraded path when the daemon dies mid-run, raw-garbage clients,
//! and the loss-free-compaction stress the single-owner design exists
//! for.
//!
//! The daemon runs **in-process** on an ephemeral port — the same
//! accept/handler/GC threads the binary spawns, without the binary-path
//! and orphaned-process fragility of forking a child.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use cfr_sim::core::{Engine, ExperimentScale, RunKey, Store, StrategyKind};
use cfr_sim::types::{
    AddressingMode, ArtifactStore, ClaimOutcome, GcPolicy, LayeredStore, RemoteStore, ServerConfig,
    StoreBackend, StoreServer, NS_RUNS,
};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cfr-daemon-it-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn serve(dir: &std::path::Path, config: ServerConfig) -> StoreServer {
    let store = Arc::new(ArtifactStore::open(dir, GcPolicy::unbounded()).unwrap());
    StoreServer::bind(store, "127.0.0.1:0", config).unwrap()
}

fn quiet_config() -> ServerConfig {
    ServerConfig {
        gc_policy: GcPolicy::unbounded(),
        gc_interval: None,
        ..ServerConfig::default()
    }
}

fn tiny() -> ExperimentScale {
    ExperimentScale {
        max_commits: 10_000,
        seed: 0x5EED,
    }
}

fn keys(scale: &ExperimentScale) -> Vec<RunKey> {
    ["177.mesa", "254.gap"]
        .into_iter()
        .flat_map(|p| {
            [StrategyKind::Base, StrategyKind::Ia]
                .into_iter()
                .map(move |s| RunKey::new(p, scale, s, AddressingMode::ViPt))
        })
        .collect()
}

/// An engine whose only store is the daemon at `addr`.
fn remote_engine(addr: &str) -> Engine {
    Engine::new().with_store(Store::over(Arc::new(RemoteStore::new(addr))))
}

/// A second engine pass against the daemon is 0 cold and produces
/// reports bit-identical to the local-store path (equal reports ⇒
/// byte-identical stdout: the tables are deterministic formatting over
/// the reports).
#[test]
fn daemon_serves_runs_warm_across_engines_bit_identically() {
    let dir = temp_dir("warm");
    let server = serve(&dir, quiet_config());
    let addr = server.addr().to_string();
    let scale = tiny();
    let ks = keys(&scale);

    // Reference: the plain local-store path.
    let local_dir = temp_dir("warm-localref");
    let reference = Engine::new().with_store(Store::open(&local_dir).unwrap());
    let expected = reference.run_many(&ks);

    // Cold pass through the daemon: everything simulates, results go
    // over the wire into the daemon's shards.
    let cold = remote_engine(&addr);
    let cold_reports = cold.run_many(&ks);
    assert_eq!(cold.store_cold_runs(), ks.len() as u64);
    assert_eq!(cold.store_warm_runs(), 0);
    for (a, b) in expected.iter().zip(&cold_reports) {
        assert_eq!(**a, **b, "daemon-backed cold run matches local run");
    }
    assert_eq!(
        server.store().namespace_records(NS_RUNS),
        ks.len(),
        "every run landed in the daemon's store"
    );

    // Warm pass: a fresh engine and a fresh client (= a fresh process)
    // must compute nothing.
    let warm = remote_engine(&addr);
    let warm_reports = warm.run_many(&ks);
    assert_eq!(warm.simulated_runs(), 0, "second pass is 0 cold");
    assert_eq!(warm.store_warm_runs(), ks.len() as u64);
    for (a, b) in expected.iter().zip(&warm_reports) {
        assert_eq!(**a, **b, "warm-over-the-wire reports are bit-identical");
    }
    let line = warm.summary_line();
    assert!(line.contains("tcp://"), "summary names the daemon: {line}");

    server.shutdown();
    let _ = fs::remove_dir_all(&dir);
    let _ = fs::remove_dir_all(&local_dir);
}

/// Two engines in different threads hammer the same daemon
/// concurrently; both come back with reference-identical reports and
/// the daemon holds each unique key exactly once.
#[test]
fn concurrent_engines_share_one_daemon() {
    let dir = temp_dir("concurrent");
    let server = serve(&dir, quiet_config());
    let addr = server.addr().to_string();
    let scale = tiny();
    let ks = keys(&scale);

    let reference = Engine::new();
    let expected = reference.run_many(&ks);

    let workers: Vec<_> = (0..2)
        .map(|_| {
            let addr = addr.clone();
            let ks = ks.clone();
            thread::spawn(move || {
                let engine = remote_engine(&addr);
                let reports = engine.run_many(&ks);
                reports.iter().map(|r| (**r).clone()).collect::<Vec<_>>()
            })
        })
        .collect();
    for worker in workers {
        let reports = worker.join().expect("engine thread must not panic");
        for (a, b) in expected.iter().zip(&reports) {
            assert_eq!(**a, *b);
        }
    }
    assert_eq!(server.store().namespace_records(NS_RUNS), ks.len());
    server.shutdown();
    let _ = fs::remove_dir_all(&dir);
}

/// Four engines race the same fully-cold plan through one daemon. The
/// protocol-level claim/wait cycle must make each unique key simulate
/// **exactly once globally** — the daemon's own counters are the proof:
/// one claim granted per key, none expired, and the sum of the racers'
/// simulation counts equals the unique-key count. Every racer still
/// comes back with reference-identical reports (losers read the
/// winner's published record).
#[test]
fn racing_engines_simulate_each_cold_key_exactly_once_globally() {
    let dir = temp_dir("racing");
    let server = serve(&dir, quiet_config());
    let addr = server.addr().to_string();
    let scale = tiny();
    let ks = keys(&scale);

    let reference = Engine::new();
    let expected = reference.run_many(&ks);

    let engines: Vec<Arc<Engine>> = (0..4).map(|_| Arc::new(remote_engine(&addr))).collect();
    let workers: Vec<_> = engines
        .iter()
        .map(|engine| {
            let engine = Arc::clone(engine);
            let ks = ks.clone();
            thread::spawn(move || {
                engine
                    .run_many(&ks)
                    .iter()
                    .map(|r| (**r).clone())
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    for worker in workers {
        let reports = worker.join().expect("racing engine must not panic");
        for (a, b) in expected.iter().zip(&reports) {
            assert_eq!(**a, *b, "every racer sees reference-identical reports");
        }
    }

    let total_simulated: u64 = engines.iter().map(|e| e.simulated_runs()).sum();
    assert_eq!(
        total_simulated,
        ks.len() as u64,
        "cold simulations across all racers == unique keys (global dedup)"
    );
    // Every racer resolved every key: what it did not simulate, it read
    // warm (probe hit, claim hit, or wait-published hit).
    for engine in &engines {
        assert_eq!(
            engine.store_warm_runs() + engine.simulated_runs(),
            ks.len() as u64
        );
    }
    let stats = RemoteStore::new(addr).stats().expect("daemon reachable");
    assert_eq!(
        stats.claims_granted,
        ks.len() as u64,
        "exactly one claim granted per unique key"
    );
    assert_eq!(stats.claims_expired, 0, "no claim lapsed during the race");
    assert!(
        stats.batched_keys >= (ks.len() * engines.len()) as u64,
        "every racer probed its plan through batched MGETs"
    );
    assert_eq!(server.store().namespace_records(NS_RUNS), ks.len());
    server.shutdown();
    let _ = fs::remove_dir_all(&dir);
}

/// A client claims a cold key and dies without publishing. The daemon
/// releases the orphaned claim on disconnect, so a later engine is
/// never stuck behind a dead claimant: it computes the key itself and
/// the daemon's expiry counter records the release.
#[test]
fn dead_claim_holder_never_wedges_a_racing_engine() {
    let dir = temp_dir("deadclaim");
    let server = serve(&dir, quiet_config());
    let addr = server.addr().to_string();
    let scale = tiny();
    let key = RunKey::new("177.mesa", &scale, StrategyKind::Base, AddressingMode::ViPt);
    let record = Store::key_record(&key);

    // The doomed claimant takes a long lease… then its process dies
    // (the dropped client closes the connection without publishing).
    {
        let doomed = RemoteStore::new(addr.clone());
        assert_eq!(
            doomed.claim(NS_RUNS, &record, Duration::from_secs(300)),
            ClaimOutcome::Granted
        );
    }

    // A fresh engine still completes promptly — released claim ⇒ local
    // compute, preserving every-failure-is-a-miss — and the report is
    // bit-identical to the no-daemon reference.
    let engine = remote_engine(&addr);
    let report = engine.run(key);
    assert_eq!(engine.simulated_runs(), 1, "the engine computed it itself");
    let reference = Engine::new();
    assert_eq!(*report, *reference.run(key));

    let stats = RemoteStore::new(addr).stats().expect("daemon reachable");
    assert_eq!(
        stats.claims_expired, 1,
        "the daemon recorded the dead claimant's release"
    );
    server.shutdown();
    let _ = fs::remove_dir_all(&dir);
}

/// The daemon dies between two batches on one engine (one established
/// client connection): the second batch degrades to cold — no panic, no
/// hang, bit-identical results.
#[test]
fn daemon_death_mid_run_degrades_to_cold() {
    let dir = temp_dir("death");
    let server = serve(&dir, quiet_config());
    let addr = server.addr().to_string();
    let scale = tiny();
    let ks = keys(&scale);
    let (first_half, second_half) = ks.split_at(2);

    let reference = Engine::new();
    let expected = reference.run_many(&ks);

    // Warm the daemon with the first half through one engine…
    let seed_engine = remote_engine(&addr);
    let _ = seed_engine.run_many(first_half);

    // …then a second engine reads those warm, loses the daemon, and
    // finishes the rest cold over the same (now dead) connection.
    let engine = remote_engine(&addr);
    let warm_part = engine.run_many(first_half);
    assert_eq!(engine.simulated_runs(), 0, "first half served warm");
    server.shutdown(); // the daemon dies mid-run
    let cold_part = engine.run_many(second_half);
    assert_eq!(
        engine.simulated_runs(),
        second_half.len() as u64,
        "after the daemon died everything simulates"
    );
    for (a, b) in expected.iter().zip(warm_part.iter().chain(&cold_part)) {
        assert_eq!(**a, **b, "degraded results are still correct");
    }
    let _ = fs::remove_dir_all(&dir);
}

/// With a layered store, a daemon death degrades to the *local* layer:
/// runs the local shards already hold stay warm with the daemon gone.
#[test]
fn layered_engine_falls_back_to_local_when_the_daemon_dies() {
    let daemon_dir = temp_dir("fallback-daemon");
    let local_dir = temp_dir("fallback-local");
    let scale = tiny();
    let ks = keys(&scale);

    // Warm the *local* store the pre-daemon way.
    let local_engine = Engine::new().with_store(Store::open(&local_dir).unwrap());
    let expected = local_engine.run_many(&ks);

    let server = serve(&daemon_dir, quiet_config());
    let layered = LayeredStore::new(
        RemoteStore::new(server.addr().to_string()),
        Some(Arc::new(
            ArtifactStore::open(&local_dir, GcPolicy::unbounded()).unwrap(),
        )),
    );
    server.shutdown(); // daemon gone before the engine ever reaches it

    let engine = Engine::new().with_store(Store::over(Arc::new(layered)));
    let reports = engine.run_many(&ks);
    assert_eq!(
        engine.simulated_runs(),
        0,
        "local fallback serves everything with the daemon dead"
    );
    for (a, b) in expected.iter().zip(&reports) {
        assert_eq!(**a, **b);
    }
    let _ = fs::remove_dir_all(&daemon_dir);
    let _ = fs::remove_dir_all(&local_dir);
}

/// A client speaking garbage gets an error reply (or a disconnect),
/// never takes the daemon down, and never corrupts what engines see.
#[test]
fn garbage_speaking_clients_cannot_hurt_the_daemon() {
    use std::io::{Read, Write};

    let dir = temp_dir("garbage");
    let server = serve(&dir, quiet_config());
    let addr = server.addr().to_string();

    let client = RemoteStore::new(addr.clone());
    client.save(NS_RUNS, "kept", "value that must survive vandals");

    for garbage in [
        b"GET / HTTP/1.1\r\nHost: x\r\n\r\n".to_vec(),
        b"cfr1 99999999999999999999\n".to_vec(),
        b"cfr1 12\ntoo short".to_vec(),
        vec![0u8; 64],
        vec![0xff; 512],
    ] {
        let mut raw = std::net::TcpStream::connect(server.addr()).unwrap();
        raw.write_all(&garbage).unwrap();
        let _ = raw.shutdown(std::net::Shutdown::Write);
        // Drain whatever the server answers (an err frame or nothing);
        // the only requirement is that it disconnects rather than hangs.
        let mut sink = Vec::new();
        let _ = raw.take(4096).read_to_end(&mut sink);
    }
    assert_eq!(
        client.load(NS_RUNS, "kept").as_deref(),
        Some("value that must survive vandals"),
        "the daemon survives garbage-speaking clients"
    );
    server.shutdown();
    let _ = fs::remove_dir_all(&dir);
}

/// The loss PR 3 documented for cross-process compaction, attacked
/// head-on: N client threads hammer interleaved PUT/GET on one
/// namespace for 100 consecutive iterations while the daemon's
/// background GC (1 ms cadence) and an explicit maintenance client
/// compact concurrently. No fresh append may be lost, and every
/// surviving record must read back byte-for-byte — through the daemon
/// and from a fresh scan of the shards afterwards.
#[test]
fn compaction_under_fire_loses_no_appends_for_100_iterations() {
    const THREADS: usize = 4;
    const ITERATIONS: usize = 100;

    let dir = temp_dir("stress");
    let server = serve(
        &dir,
        ServerConfig {
            gc_policy: GcPolicy::unbounded(),
            gc_interval: Some(Duration::from_millis(1)),
            ..ServerConfig::default()
        },
    );
    let addr = server.addr().to_string();

    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let addr = addr.clone();
            thread::spawn(move || {
                let client = RemoteStore::new(addr);
                for i in 0..ITERATIONS {
                    // A hot per-thread key: every overwrite leaves dead
                    // bytes for the GC to compact under us. Reads after
                    // writes must see the write (one daemon, one index).
                    let own_value = format!("thread {t} iteration {i} payload 0x3fb999999999999a");
                    client.save(NS_RUNS, &format!("own-{t}"), &own_value);
                    assert_eq!(
                        client.load(NS_RUNS, &format!("own-{t}")).as_deref(),
                        Some(own_value.as_str()),
                        "read-your-writes at thread {t}, iteration {i}"
                    );
                    // A contended key: any thread may win, but the value
                    // must always be one some thread actually wrote.
                    client.save(NS_RUNS, "contended", &format!("winner {t} at {i}"));
                    let got = client
                        .load(NS_RUNS, "contended")
                        .expect("contended key always present once written");
                    assert!(got.starts_with("winner "), "torn read: {got:?}");
                    // A write-once key per (thread, iteration): the
                    // no-lost-appends witness.
                    client.save(NS_RUNS, &format!("stable-{t}-{i}"), "immutable record");
                }
            })
        })
        .collect();
    // A maintenance client forcing full GC passes on top of the 1 ms
    // background cadence — the exact cross-compaction scenario.
    let gc_addr = addr.clone();
    let gc_worker = thread::spawn(move || {
        let client = RemoteStore::new(gc_addr);
        for _ in 0..ITERATIONS {
            let _ = client.gc();
            thread::sleep(Duration::from_micros(200));
        }
    });
    for w in workers {
        w.join().expect("client thread must not panic");
    }
    gc_worker.join().expect("gc thread must not panic");

    // Every append survived, byte-for-byte, through the daemon…
    let check = RemoteStore::new(addr);
    for t in 0..THREADS {
        let last = format!(
            "thread {t} iteration {} payload 0x3fb999999999999a",
            ITERATIONS - 1
        );
        assert_eq!(
            check.load(NS_RUNS, &format!("own-{t}")).as_deref(),
            Some(last.as_str())
        );
        for i in 0..ITERATIONS {
            assert_eq!(
                check.load(NS_RUNS, &format!("stable-{t}-{i}")).as_deref(),
                Some("immutable record"),
                "stable-{t}-{i} was dropped by a concurrent compaction"
            );
        }
    }
    let final_gc = check.gc().expect("daemon still reachable");
    assert_eq!(
        final_gc.live_records as usize,
        THREADS * ITERATIONS + THREADS + 1,
        "live set is exactly the stable keys + own keys + contended key"
    );
    server.shutdown();

    // …and from a cold rescan of the compacted shard files.
    let reopened = ArtifactStore::open(&dir, GcPolicy::unbounded()).unwrap();
    assert_eq!(
        reopened.namespace_records(NS_RUNS),
        THREADS * ITERATIONS + THREADS + 1
    );
    for t in 0..THREADS {
        for i in 0..ITERATIONS {
            assert_eq!(
                reopened
                    .load(NS_RUNS, &format!("stable-{t}-{i}"))
                    .as_deref(),
                Some("immutable record"),
                "stable-{t}-{i} lost on disk"
            );
        }
    }
    let _ = fs::remove_dir_all(&dir);
}

/// The typed maintenance surface over the wire: stats reflects traffic,
/// GC compacts dead bytes, and the engine's per-namespace counters keep
/// working against a daemon.
#[test]
fn stats_and_gc_commands_work_against_live_traffic() {
    let dir = temp_dir("maint");
    let server = serve(&dir, quiet_config());
    let addr = server.addr().to_string();
    let client = RemoteStore::new(addr.clone());

    client.save(NS_RUNS, "k", "version 1");
    client.save(NS_RUNS, "k", "version 2");
    let stats = client.stats().expect("daemon reachable");
    assert_eq!(stats.runs, 1);
    assert!(
        stats.file_bytes > stats.live_bytes,
        "the superseded record is dead bytes"
    );
    let report = client.gc().expect("daemon reachable");
    assert!(report.dead_bytes_dropped > 0);
    let after = client.stats().expect("daemon reachable");
    assert_eq!(after.file_bytes, after.live_bytes, "compacted clean");
    assert_eq!(client.load(NS_RUNS, "k").as_deref(), Some("version 2"));

    // The engine's namespace counters flow over the wire too.
    let engine = remote_engine(&addr);
    let scale = tiny();
    let key = RunKey::new("177.mesa", &scale, StrategyKind::Base, AddressingMode::ViPt);
    let _ = engine.run(key);
    let summary = engine.store_summary();
    assert_eq!(summary.runs.cold, 1);
    let warm_engine = remote_engine(&addr);
    let _ = warm_engine.run(key);
    let summary = warm_engine.store_summary();
    assert_eq!((summary.runs.warm, summary.runs.cold), (1, 0));

    server.shutdown();
    let _ = fs::remove_dir_all(&dir);
}
