//! Differential proofs for the multiprogrammed scenario layer.
//!
//! Two claims, both enforced here rather than argued in comments:
//!
//! 1. **Degeneracy** — a 1-process scenario with an infinite quantum is
//!    the plain engine path wearing a different hat. Its machine report
//!    must be field-identical (and record-byte-identical) to
//!    [`Engine::run`] for the same key, under either TLB mode. CI runs
//!    this binary under both `CFR_BACKEND` values, so the claim holds for
//!    the interpreter and the pre-decoded trace backend alike.
//!
//! 2. **Backend agreement** — over *random* scenario schedules (process
//!    mix, page sizes, quantum, TLB mode, ASID count, every OS penalty),
//!    the interpreted and compiled backends produce byte-identical
//!    reports. The scheduler slices pipelines mid-flight at arbitrary
//!    cycle boundaries; this property pins that slicing to be
//!    backend-invariant, not just end-state-invariant.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use proptest::prelude::*;

use cfr_sim::core::{
    compiler, scenario, Engine, ExecBackend, ExperimentScale, RunKey, ScenarioBinary,
    ScenarioConfig, ScenarioProc, StrategyKind, TlbMode,
};
use cfr_sim::types::{AddressingMode, PageGeometry, RecordWriter};
use cfr_sim::workload::{compile_trace, profiles, CompiledTrace, LaidProgram};

/// Profiles the random scheduler draws from (a superset of any mix).
const NAMES: [&str; 4] = ["177.mesa", "186.crafty", "254.gap", "255.vortex"];

/// Binary cache: layout and trace depend only on (profile, geometry)
/// here (strategy is fixed per test), so 64 proptest cases share a
/// handful of compilations instead of redoing them per case.
fn binary(profile: &'static str, geom: PageGeometry) -> (Arc<LaidProgram>, Arc<CompiledTrace>) {
    type Key = (&'static str, u64);
    type Cached = (Arc<LaidProgram>, Arc<CompiledTrace>);
    static CACHE: OnceLock<Mutex<HashMap<Key, Cached>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut cache = cache.lock().expect("binary cache poisoned");
    cache
        .entry((profile, geom.page_bytes()))
        .or_insert_with(|| {
            let p = profiles::all()
                .into_iter()
                .find(|p| p.name == profile)
                .expect("registered profile");
            let laid = Arc::new(compiler::compile_for(&p.generate(), geom, StrategyKind::Ia));
            let trace = Arc::new(compile_trace(&laid));
            (laid, trace)
        })
        .clone()
}

fn bins_for(cfg: &ScenarioConfig) -> Vec<ScenarioBinary> {
    (0..cfg.procs.len())
        .map(|i| {
            let (laid, trace) = binary(cfg.procs[i].profile, cfg.proc_config(i).cpu.geometry);
            ScenarioBinary {
                laid,
                trace: Some(trace),
            }
        })
        .collect()
}

/// Degeneracy at the engine level: the scenario machinery (scheduler,
/// shared-TLB migration, store round trip through the `scenarios`
/// namespace) adds exactly nothing to a solo infinite-quantum run.
#[test]
fn one_proc_infinite_quantum_matches_plain_engine_run() {
    let scale = ExperimentScale {
        max_commits: 12_000,
        seed: 0x5EED,
    };
    let engine = Engine::new();
    for strategy in [StrategyKind::Base, StrategyKind::Ia] {
        let plain = engine.run(RunKey::new(
            "186.crafty",
            &scale,
            strategy,
            AddressingMode::ViPt,
        ));
        for tlb_mode in [TlbMode::Asid, TlbMode::Flush] {
            let cfg = {
                let mut cfg = ScenarioConfig::new(
                    vec![ScenarioProc::new("186.crafty")],
                    scale,
                    strategy,
                    AddressingMode::ViPt,
                );
                cfg.tlb_mode = tlb_mode;
                cfg
            };
            let scen = engine.run_scenario(&cfg);
            assert_eq!(
                scen.machine, *plain,
                "{strategy:?}/{tlb_mode:?}: scenario must degenerate to the plain path"
            );
            let (mut a, mut b) = (RecordWriter::new(), RecordWriter::new());
            scen.machine.to_record(&mut a);
            plain.to_record(&mut b);
            assert_eq!(a.finish(), b.finish(), "byte-identical serialized reports");
            assert_eq!(scen.context_switches, 0);
            assert_eq!(scen.switch_cycles, 0);
            assert_eq!(scen.per_proc_committed, vec![plain.committed]);
        }
    }
}

/// Same degeneracy with a non-default page size: the per-process page
/// override must route through the scenario path exactly as
/// `RunKey::with_page_bytes` routes through the plain one.
#[test]
fn one_proc_superpage_scenario_matches_plain_engine_run() {
    let scale = ExperimentScale {
        max_commits: 12_000,
        seed: 0x5EED,
    };
    let engine = Engine::new();
    let plain = engine.run(
        RunKey::new("254.gap", &scale, StrategyKind::Ia, AddressingMode::ViPt)
            .with_page_bytes(2 * 1024 * 1024),
    );
    let cfg = ScenarioConfig::new(
        vec![ScenarioProc::new("254.gap").with_page_bytes(2 * 1024 * 1024)],
        scale,
        StrategyKind::Ia,
        AddressingMode::ViPt,
    );
    let scen = engine.run_scenario(&cfg);
    assert_eq!(scen.machine, *plain, "2 MB pages: field-identical");
}

proptest! {
    /// Interp-vs-compiled field identity over random scenario schedules.
    /// Every OS knob is drawn at random; the only invariant demanded is
    /// that the two execution backends cannot be told apart.
    #[test]
    fn backends_agree_over_random_schedules(
        n_procs in 1usize..4,
        proc_picks in proptest::collection::vec(0usize..NAMES.len() * 2, 3..4),
        commits in 1_500u64..4_000,
        seed in 0u64..1 << 20,
        quantum in 500u64..20_000,
        // Low bit: flush-on-switch; high bits: ASID count 1..=4.
        tlb_pick in 0u32..8,
        switch_penalty in 0u32..600,
        shootdown_per_entry in 0u32..4,
        fault_latency in 0u32..400,
        demand_fault_penalty in 0u32..1_000,
    ) {
        let procs: Vec<ScenarioProc> = proc_picks[..n_procs]
            .iter()
            .map(|&pick| {
                let p = ScenarioProc::new(NAMES[pick % NAMES.len()]);
                if pick >= NAMES.len() {
                    p.with_page_bytes(2 * 1024 * 1024)
                } else {
                    p
                }
            })
            .collect();
        let mut cfg = ScenarioConfig::new(
            procs,
            ExperimentScale { max_commits: commits, seed },
            StrategyKind::Ia,
            AddressingMode::ViPt,
        );
        cfg.quantum = quantum;
        cfg.tlb_mode = if tlb_pick & 1 == 1 { TlbMode::Flush } else { TlbMode::Asid };
        cfg.asid_count = 1 + (tlb_pick >> 1) as u16;
        cfg.switch_penalty = switch_penalty;
        cfg.shootdown_per_entry = shootdown_per_entry;
        cfg.fault_latency = fault_latency;
        cfg.demand_fault_penalty = demand_fault_penalty;

        let bins = bins_for(&cfg);
        let interp = scenario::simulate(&cfg, &bins, ExecBackend::Interp);
        let compiled = scenario::simulate(&cfg, &bins, ExecBackend::Compiled);
        prop_assert_eq!(&interp, &compiled);
        prop_assert_eq!(
            interp.per_proc_committed.iter().sum::<u64>(),
            commits * cfg.procs.len() as u64
        );
    }
}
