//! Golden-output regression for the multiprogrammed scenario layer.
//!
//! The records below were captured via `examples/scenario_dump.rs` and
//! pin three scenario cells byte-for-byte: both TLB modes under
//! preemption with every OS penalty live, plus a solo infinite-quantum
//! cell with every penalty at zero. The third cell doubles as the
//! fault-latency-0 compatibility proof: its machine report must stay
//! byte-identical to the plain engine path, so adding the scenario layer
//! cannot have moved any pre-scenario number.
//!
//! The records are backend-invariant (see
//! `tests/scenario_differential.rs`); CI runs this binary under both
//! `CFR_BACKEND` values against the same literals.
//!
//! If a PR *intentionally* changes the model, rerun
//! `cargo run --release --example scenario_dump` and refresh the records
//! — and say so in the PR, because it moves every scenario experiment.

use cfr_sim::core::{
    Engine, ExperimentScale, RunKey, ScenarioConfig, ScenarioProc, StrategyKind, TlbMode,
    QUANTUM_INFINITE,
};
use cfr_sim::types::{AddressingMode, RecordWriter};

const GOLDEN: [(&str, &str); 3] = [
    (
        "scenario 2 177.mesa default 254.gap 2097152 scale 20000 24301 ia vipt asid 2 6000 400 2 300 800",
        "scenreport report ia vipt 40000 106767 tlbstats2 870 864 6 0 0 meter 4 cfr_compare comp 3027 0x40dd8f8000000000 cfr_read comp 43906 0x4108a77ccccce202 itlb_access comp 870 0x411652d000000037 itlb_refill comp 6 0x40a7a5c28f5c28f5 breakdown 13 857 cpustats 106767 40000 40104 4672 3379 425 0 430 0 cachestats 44776 44365 411 0 cachestats 12548 4901 7647 2782 cachestats 10840 4244 6596 403 tlbstats2 12548 12460 88 0 0 8801 4107 2 20000 20000 17 0 0 0 94 6800",
    ),
    (
        "scenario 2 177.mesa default 254.gap 2097152 scale 20000 24301 ia vipt flush 1 6000 400 2 300 800",
        "scenreport report ia vipt 40000 108605 tlbstats2 873 834 39 38 0 meter 4 cfr_compare comp 3023 0x40dd858000000000 cfr_read comp 43802 0x410898899999aeba itlb_access comp 873 0x41166684cccccd05 itlb_refill comp 39 0x40d336ae147ae144 breakdown 18 855 cpustats 108605 40000 40093 4582 3377 421 0 430 0 cachestats 44675 44266 409 0 cachestats 12545 4900 7645 2780 cachestats 10834 4239 6595 403 tlbstats2 12545 12158 387 365 0 8786 4102 2 20000 20000 17 38 365 0 94 7606",
    ),
    (
        "scenario 1 177.mesa default scale 20000 24301 ia vipt asid 16 18446744073709551615 0 0 0 0",
        "scenreport report ia vipt 20000 28099 tlbstats2 676 671 5 0 0 meter 4 cfr_compare comp 1906 0x40d29d0000000000 cfr_read comp 21804 0x40f87ca666666e48 itlb_access comp 676 0x4111587999999983 itlb_refill comp 5 0x40a3b4cccccccccc breakdown 1 675 cpustats 28099 20000 20033 2447 1910 246 0 430 0 cachestats 22480 22387 93 0 cachestats 5982 2320 3662 1716 cachestats 5471 2786 2685 0 tlbstats2 5982 5919 63 0 0 3736 2388 1 20000 0 0 0 0 0 0",
    ),
];

/// The golden scenario set, in `examples/scenario_dump.rs` order.
fn golden_scenarios() -> Vec<ScenarioConfig> {
    let scale = ExperimentScale {
        max_commits: 20_000,
        seed: 0x5EED,
    };
    let mix = || {
        vec![
            ScenarioProc::new("177.mesa"),
            ScenarioProc::new("254.gap").with_page_bytes(2 * 1024 * 1024),
        ]
    };
    let preempted = |tlb_mode: TlbMode, asid_count: u16| {
        let mut cfg = ScenarioConfig::new(mix(), scale, StrategyKind::Ia, AddressingMode::ViPt);
        cfg.quantum = 6_000;
        cfg.tlb_mode = tlb_mode;
        cfg.asid_count = asid_count;
        cfg.switch_penalty = 400;
        cfg.shootdown_per_entry = 2;
        cfg.fault_latency = 300;
        cfg.demand_fault_penalty = 800;
        cfg
    };
    let mut solo = ScenarioConfig::new(
        vec![ScenarioProc::new("177.mesa")],
        scale,
        StrategyKind::Ia,
        AddressingMode::ViPt,
    );
    solo.quantum = QUANTUM_INFINITE;
    vec![
        preempted(TlbMode::Asid, 2),
        preempted(TlbMode::Flush, 1),
        solo,
    ]
}

#[test]
fn scenario_reports_match_recorded_goldens_byte_for_byte() {
    let cfgs = golden_scenarios();
    // No store: the goldens must be *simulated*, never read warm.
    let engine = Engine::new();
    let first = engine.run_scenarios(&cfgs);
    for (i, (cfg, (key, report))) in cfgs.iter().zip(GOLDEN).enumerate() {
        assert_eq!(cfg.store_key(), key, "golden {i}: config identity moved");
        let mut w = RecordWriter::new();
        first[i].to_record(&mut w);
        assert_eq!(w.finish(), report, "golden {i}: report record moved");
    }
    // The same plan on a second engine is bit-identical (determinism is
    // what makes the goldens meaningful at all).
    let second = Engine::new().run_scenarios(&cfgs);
    for (i, (a, b)) in first.iter().zip(&second).enumerate() {
        assert_eq!(**a, **b, "golden {i}: second engine diverged");
    }
}

/// Fault latency 0 + infinite quantum pins the scenario layer to the
/// pre-scenario suite: the solo golden's machine record is byte-identical
/// to what the plain single-program engine path produces today.
#[test]
fn zero_penalty_solo_golden_is_the_plain_engine_report() {
    let scale = ExperimentScale {
        max_commits: 20_000,
        seed: 0x5EED,
    };
    let plain = Engine::new().run(RunKey::new(
        "177.mesa",
        &scale,
        StrategyKind::Ia,
        AddressingMode::ViPt,
    ));
    let mut w = RecordWriter::new();
    plain.to_record(&mut w);
    let machine_record = w.finish();
    let (_, golden_solo) = GOLDEN[2];
    assert!(
        golden_solo.starts_with(&format!("scenreport {machine_record} ")),
        "solo scenario golden no longer embeds the plain engine report"
    );
}
