//! Integration tests of the store's garbage collection and compaction:
//! byte budgets evict oldest-first, compaction preserves surviving
//! records bit-for-bit, a concurrent reader of a mid-compaction store
//! degrades to a miss (never a wrong answer), and a capped engine store
//! stays correct — just colder.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use cfr_sim::core::{Engine, ExperimentScale, GcPolicy, RunKey, Store, StrategyKind};
use cfr_sim::types::{AddressingMode, ArtifactStore, StoreBackend, NS_RUNS};

fn temp_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cfr-gc-it-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Filling a capped store past `max_bytes` evicts oldest-first: the
/// survivors are a contiguous suffix of the insertion order, and the
/// files stay under the cap.
#[test]
fn filling_past_the_cap_evicts_oldest_first() {
    let dir = temp_store("fill");
    let cap = 4000u64;
    let store = ArtifactStore::open(
        &dir,
        GcPolicy {
            max_bytes: Some(cap),
            max_age_secs: None,
        },
    )
    .unwrap();
    let payload = "p".repeat(150);
    for i in 0..60u64 {
        store.save_stamped(NS_RUNS, &format!("run-{i:02}"), &payload, 5000 + i);
    }
    assert!(
        store.file_bytes() <= cap,
        "budget held: {}",
        store.file_bytes()
    );
    assert!(store.evicted_records() > 0);
    let alive: Vec<u64> = (0..60)
        .filter(|i| store.load(NS_RUNS, &format!("run-{i:02}")).is_some())
        .collect();
    assert!(!alive.is_empty(), "the newest records survive");
    let oldest_alive = alive[0];
    assert!(oldest_alive > 0, "the oldest record was evicted");
    assert_eq!(
        alive,
        (oldest_alive..60).collect::<Vec<_>>(),
        "survivors are exactly the newest (contiguous) suffix"
    );
    // A fresh scan of the compacted shards agrees byte-for-byte.
    let reopened = ArtifactStore::open(&dir, GcPolicy::unbounded()).unwrap();
    for i in alive {
        assert_eq!(
            reopened.load(NS_RUNS, &format!("run-{i:02}")).as_deref(),
            Some(payload.as_str()),
            "post-compaction read of run-{i:02} is byte-identical"
        );
    }
    let _ = fs::remove_dir_all(&dir);
}

/// Compaction drops superseded (dead) bytes while preserving every
/// surviving record's exact bytes — including float bit patterns.
#[test]
fn compaction_preserves_survivors_bit_for_bit() {
    let dir = temp_store("compact");
    let store = ArtifactStore::open(&dir, GcPolicy::unbounded()).unwrap();
    let exact = "fstats 1 2 3 0x3fb999999999999a 0xc000000000000000";
    store.save(NS_RUNS, "stable", exact);
    for i in 0..50 {
        store.save(NS_RUNS, "churn", &format!("version {i}"));
    }
    let before = store.file_bytes();
    let report = store.gc();
    assert!(report.dead_bytes_dropped > 0);
    assert!(report.shards_rewritten > 0);
    assert!(store.file_bytes() < before);
    assert_eq!(store.file_bytes(), store.live_bytes(), "no dead bytes left");
    assert_eq!(store.load(NS_RUNS, "stable").as_deref(), Some(exact));
    assert_eq!(store.load(NS_RUNS, "churn").as_deref(), Some("version 49"));
    let _ = fs::remove_dir_all(&dir);
}

/// A reader holding a pre-compaction index while another handle compacts
/// the store must degrade to misses (and repair itself on the next
/// save), never serve bytes from the wrong offset as a value.
#[test]
fn concurrent_reader_of_a_mid_compaction_store_misses() {
    let dir = temp_store("racing");
    let reader = ArtifactStore::open(&dir, GcPolicy::unbounded()).unwrap();
    // Several records per shard so compaction shifts offsets.
    for i in 0..40 {
        reader.save(NS_RUNS, &format!("k{i}"), &format!("value number {i}"));
    }
    // A second handle (a concurrent process) supersedes some records and
    // compacts, invalidating the reader's offsets.
    let compactor = ArtifactStore::open(&dir, GcPolicy::unbounded()).unwrap();
    for i in 0..20 {
        compactor.save(NS_RUNS, &format!("k{i}"), "superseded!");
    }
    let report = compactor.gc();
    assert!(report.dead_bytes_dropped > 0);
    // The reader's stale index: every load is either a miss or the true
    // current value (when the offset happened to survive) — never a torn
    // or foreign value.
    for i in 0..40 {
        let got = reader.load(NS_RUNS, &format!("k{i}"));
        let valid = [
            None,
            Some(format!("value number {i}")),
            Some("superseded!".to_string()),
        ];
        assert!(valid.contains(&got), "k{i}: unexpected read {got:?}");
    }
    // Misses repair on save: the reader can write through again.
    reader.save(NS_RUNS, "k0", "repaired");
    assert_eq!(reader.load(NS_RUNS, "k0").as_deref(), Some("repaired"));
    let _ = fs::remove_dir_all(&dir);
}

/// An engine over a tightly-capped store stays *correct* — evicted runs
/// simply re-simulate — and the store never outgrows its budget.
#[test]
fn capped_engine_store_is_correct_just_colder() {
    let dir = temp_store("engine");
    let scale = ExperimentScale {
        max_commits: 15_000,
        seed: 0x5EED,
    };
    let keys: Vec<RunKey> = [StrategyKind::Base, StrategyKind::Ia, StrategyKind::HoA]
        .into_iter()
        .map(|k| RunKey::new("177.mesa", &scale, k, AddressingMode::ViPt))
        .collect();
    // Budget fits roughly one run record, so the engine constantly
    // evicts; results must still be bit-identical to an uncapped engine.
    let cap = GcPolicy {
        max_bytes: Some(3000),
        max_age_secs: None,
    };
    let reference = Engine::new();
    let expected = reference.run_many(&keys);

    let artifacts = Arc::new(ArtifactStore::open(&dir, cap).unwrap());
    let backend: Arc<dyn StoreBackend> = artifacts.clone();
    let capped = Engine::new().with_store(Store::over(backend));
    let got = capped.run_many(&keys);
    for (a, b) in expected.iter().zip(&got) {
        assert_eq!(**a, **b);
    }
    assert!(
        artifacts.file_bytes() <= 3000,
        "budget held under engine traffic: {}",
        artifacts.file_bytes()
    );
    // A second engine re-simulates whatever was evicted — correctness
    // never depends on what survived.
    let second = Engine::new().with_store(Store::open_with_policy(&dir, cap).unwrap());
    let again = second.run_many(&keys);
    for (a, b) in expected.iter().zip(&again) {
        assert_eq!(**a, **b);
    }
    assert!(second.store_warm_runs() + second.store_cold_runs() == keys.len() as u64);
    let _ = fs::remove_dir_all(&dir);
}
