//! Property-based tests (proptest) on the core data structures and
//! invariants: cache vs reference model, TLB translation consistency, page
//! geometry round-trips, layout/walker invariants, CFR trust.
//!
//! Parked under `tests/disabled/` (not auto-discovered by cargo): the
//! offline build cannot fetch the real `proptest` crate
//! (vendor/README.md). To revive on a networked host, add the
//! dependency to the root manifest and move this file up into `tests/`.

use proptest::prelude::*;

use cfr_sim::core::{Cfr, StrategyKind};
use cfr_sim::energy::EnergyModel;
use cfr_sim::mem::{AccessKind, Cache, CacheConfig, PageTable, Tlb, TlbConfig};
use cfr_sim::types::{
    CacheOrganization, PageGeometry, Pfn, Protection, TlbOrganization, VirtAddr, Vpn,
};
use cfr_sim::workload::{generate, GeneratorParams, LaidProgram, Walker};

proptest! {
    /// Page geometry: split-and-join is the identity for every address and
    /// every power-of-two page size.
    #[test]
    fn geometry_round_trip(addr in 0u64..u64::MAX / 2, shift in 4u32..20) {
        let geom = PageGeometry::new(1 << shift).unwrap();
        let va = VirtAddr::new(addr);
        let rebuilt = geom.join_virt(geom.vpn(va), geom.offset(va));
        prop_assert_eq!(rebuilt, va);
        prop_assert!(geom.offset(va) < geom.page_bytes());
    }

    /// `same_page` is exactly "equal VPN".
    #[test]
    fn same_page_iff_same_vpn(a in 0u64..1 << 40, b in 0u64..1 << 40) {
        let geom = PageGeometry::default_4k();
        let (va, vb) = (VirtAddr::new(a), VirtAddr::new(b));
        prop_assert_eq!(geom.same_page(va, vb), geom.vpn(va) == geom.vpn(vb));
    }

    /// A fully-associative cache of N blocks must hit on any address that
    /// is among the N most recently touched distinct blocks (true LRU).
    #[test]
    fn cache_lru_recency(addrs in proptest::collection::vec(0u64..0x4000, 1..200)) {
        let blocks = 8usize;
        let mut cache = Cache::new(CacheConfig {
            organization: CacheOrganization {
                size_bytes: (blocks * 32) as u64,
                associativity: blocks as u32,
                block_bytes: 32,
            },
            hit_latency: 1,
        });
        let mut recency: Vec<u64> = Vec::new(); // most recent block last
        for &a in &addrs {
            let block = a >> 5;
            let expected_hit = recency.iter().rev().take(blocks).any(|&b| b == block);
            let r = cache.access(a, AccessKind::Read);
            prop_assert_eq!(r.hit, expected_hit, "addr {:#x}", a);
            recency.retain(|&b| b != block);
            recency.push(block);
        }
    }

    /// The TLB never returns a translation that disagrees with the page
    /// table, across arbitrary lookup/invalidate sequences.
    #[test]
    fn tlb_translation_consistency(
        ops in proptest::collection::vec((0u64..64, proptest::bool::ANY), 1..300)
    ) {
        let mut tlb = Tlb::new(TlbConfig {
            organization: TlbOrganization::fully_associative(8),
            miss_penalty: 50,
        });
        let mut pt = PageTable::new();
        for (page, invalidate) in ops {
            let vpn = Vpn::new(page);
            if invalidate {
                tlb.invalidate(vpn);
            } else {
                let r = tlb.lookup(vpn, &mut pt);
                let (expected, _) = pt.translate(vpn, Protection::code());
                prop_assert_eq!(r.pfn, expected);
            }
        }
        prop_assert!(tlb.resident_entries() <= 8);
    }

    /// The page table is injective: distinct pages never share a frame.
    #[test]
    fn page_table_injective(pages in proptest::collection::hash_set(0u64..1 << 30, 1..200)) {
        let mut pt = PageTable::new();
        let mut frames = std::collections::HashSet::new();
        for p in pages {
            let (pfn, _) = pt.translate(Vpn::new(p), Protection::code());
            prop_assert!(frames.insert(pfn), "frame reused");
        }
    }

    /// Energy model monotonicity: more CAM entries never cost less.
    #[test]
    fn cam_energy_monotone(a in 2u32..512, b in 2u32..512) {
        let model = EnergyModel::default();
        let (small, large) = (a.min(b), a.max(b));
        let e_small = model.tlb_access_pj(&TlbOrganization::fully_associative(small));
        let e_large = model.tlb_access_pj(&TlbOrganization::fully_associative(large));
        prop_assert!(e_small <= e_large);
    }

    /// CFR trust: after `load(v)`, `matches(v)` holds and `matches(w)` for
    /// any other page does not; `invalidate` clears everything.
    #[test]
    fn cfr_trust(v in 0u64..1 << 20, w in 0u64..1 << 20, frame in 0u64..1 << 20) {
        let mut cfr = Cfr::new();
        cfr.load(Vpn::new(v), Pfn::new(frame), Protection::code());
        prop_assert!(cfr.matches(Vpn::new(v)));
        prop_assert_eq!(cfr.matches(Vpn::new(w)), v == w);
        cfr.invalidate();
        prop_assert!(!cfr.matches(Vpn::new(v)));
    }

    /// Generated programs are structurally valid for arbitrary seeds, and
    /// their instrumented layouts uphold the boundary invariant the
    /// software schemes' correctness rests on.
    #[test]
    fn generator_layout_invariants(seed in 0u64..1000) {
        let mut params = GeneratorParams::small_test();
        params.seed = seed;
        let program = generate(&params);
        prop_assert_eq!(program.validate(), Ok(()));
        let laid = LaidProgram::lay_out(&program, PageGeometry::default_4k(), true);
        prop_assert!(laid.boundary_invariant_holds());
    }

    /// Walker totality: execution never escapes the text and never stops,
    /// for arbitrary seeds.
    #[test]
    fn walker_totality(seed in 0u64..200) {
        let program = generate(&GeneratorParams::small_test());
        let laid = LaidProgram::lay_out(&program, PageGeometry::default_4k(), false);
        let mut w = Walker::new(&laid, seed);
        for _ in 0..2000 {
            let s = w.step();
            prop_assert!(s.next_slot < laid.slots.len());
        }
        prop_assert_eq!(w.steps(), 2000);
    }

    /// Strategy kinds all produce the exact requested commit count and a
    /// physically plausible IPC, for arbitrary small seeds.
    #[test]
    fn simulator_totality(seed in 0u64..20) {
        use cfr_sim::core::{SimConfig, Simulator};
        use cfr_sim::types::AddressingMode;
        let program = generate(&GeneratorParams::small_test());
        let mut cfg = SimConfig::default_config();
        cfg.max_commits = 5_000;
        cfg.seed = seed;
        let r = Simulator::run_program(&program, &cfg, StrategyKind::Ia, AddressingMode::ViVt);
        prop_assert_eq!(r.committed, 5_000);
        prop_assert!(r.cpu.ipc() > 0.05 && r.cpu.ipc() <= 4.0);
    }
}
