//! End-to-end tests of the persistent cross-process artifact store: a
//! second engine over the same directory (standing in for a second
//! process) computes nothing — in *any* namespace — and reproduces
//! bit-identical results; corruption, torn writes, format bumps, and
//! stale codecs degrade to recomputation, never a crash; and a v1
//! (one-file-per-key) store directory migrates transparently.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use cfr_sim::core::{
    table2, table4, Engine, ExperimentScale, RunKey, RunReport, Store, StrategyKind,
    STORE_FORMAT_VERSION,
};
use cfr_sim::types::AddressingMode;

fn temp_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cfr-store-it-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn tiny() -> ExperimentScale {
    ExperimentScale {
        max_commits: 15_000,
        seed: 0x5EED,
    }
}

fn sample_keys(scale: &ExperimentScale) -> Vec<RunKey> {
    vec![
        RunKey::new("177.mesa", scale, StrategyKind::Base, AddressingMode::ViPt),
        RunKey::new("177.mesa", scale, StrategyKind::Ia, AddressingMode::ViPt),
        RunKey::new("254.gap", scale, StrategyKind::SoCA, AddressingMode::ViVt),
    ]
}

fn shard_files(dir: &PathBuf) -> Vec<PathBuf> {
    fs::read_dir(dir)
        .unwrap()
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .is_some_and(|n| n.to_string_lossy().starts_with("shard-"))
        })
        .collect()
}

/// The headline behaviour: everything a first engine simulates, a second
/// engine over the same store serves warm, bit-identically — and the
/// directory holds O(shards) files, not O(runs).
#[test]
fn second_engine_simulates_nothing() {
    let dir = temp_store("warm");
    let scale = tiny();
    let keys = sample_keys(&scale);

    let cold = Engine::new().with_store(Store::open(&dir).unwrap());
    let cold_reports = cold.run_many(&keys);
    assert_eq!(cold.simulated_runs(), keys.len() as u64);
    assert_eq!(cold.store_warm_runs(), 0);
    assert_eq!(cold.store_cold_runs(), keys.len() as u64);
    assert_eq!(
        cold.store().unwrap().record_count(),
        keys.len(),
        "one live record per unique key"
    );
    assert!(
        fs::read_dir(&dir).unwrap().count() <= cfr_sim::core::SHARD_COUNT as usize,
        "packed layout: O(shards) files"
    );

    let warm = Engine::new().with_store(Store::open(&dir).unwrap());
    let warm_reports = warm.run_many(&keys);
    assert_eq!(warm.simulated_runs(), 0, "everything came from disk");
    assert_eq!(warm.store_warm_runs(), keys.len() as u64);
    assert_eq!(warm.store_cold_runs(), 0);
    let summary = warm.store_summary();
    assert_eq!(summary.runs.cold, 0);
    assert_eq!(summary.programs.cold, 0, "warm runs need no programs");
    for (a, b) in cold_reports.iter().zip(&warm_reports) {
        assert_eq!(**a, **b, "warm reports are bit-identical");
    }
    let _ = fs::remove_dir_all(&dir);
}

/// A whole experiment plan (Table 2) is warm on the second engine, and
/// produces identical rows.
#[test]
fn table2_is_warm_on_second_run() {
    let dir = temp_store("table2");
    let scale = tiny();

    let cold = Engine::new().with_store(Store::open(&dir).unwrap());
    let cold_rows = table2(&cold, &scale);
    assert!(cold.simulated_runs() > 0);
    assert!(
        cold.store_summary().programs.cold > 0,
        "cold run generated (and persisted) programs"
    );

    let warm = Engine::new().with_store(Store::open(&dir).unwrap());
    let warm_rows = table2(&warm, &scale);
    assert_eq!(warm.simulated_runs(), 0, "0 cold runs on the second pass");
    for (a, b) in cold_rows.iter().zip(&warm_rows) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.vipt_cycles, b.vipt_cycles);
        assert_eq!(a.vipt_energy_mj.to_bits(), b.vipt_energy_mj.to_bits());
        assert_eq!(a.vivt_cycles, b.vivt_cycles);
        assert_eq!(a.vivt_energy_mj.to_bits(), b.vivt_energy_mj.to_bits());
    }
    let _ = fs::remove_dir_all(&dir);
}

/// Table 4 exercises the two non-pipeline namespaces: a cold run
/// persists programs and walk measurements; a warm run reads the walks
/// back — 0 cold in *every* namespace, without touching the generator.
#[test]
fn table4_walks_are_warm_on_second_run() {
    let dir = temp_store("table4");
    let scale = tiny();

    let cold = Engine::new().with_store(Store::open(&dir).unwrap());
    let cold_rows = table4(&cold, &scale);
    let s = cold.store_summary();
    assert_eq!(s.runs.cold, 0, "table4 needs no pipeline runs");
    assert_eq!(
        s.walks,
        cfr_sim::core::NamespaceTraffic { warm: 0, cold: 6 }
    );
    assert_eq!(s.programs.cold, 6, "walking required the programs");

    let warm = Engine::new().with_store(Store::open(&dir).unwrap());
    let warm_rows = table4(&warm, &scale);
    let s = warm.store_summary();
    assert_eq!(
        s.walks,
        cfr_sim::core::NamespaceTraffic { warm: 6, cold: 0 }
    );
    assert_eq!(
        (s.runs.cold, s.programs.cold),
        (0, 0),
        "0 cold in all namespaces"
    );
    assert_eq!(
        s.programs.warm, 0,
        "warm walks never even load the programs"
    );
    for (a, b) in cold_rows.iter().zip(&warm_rows) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.static_total, b.static_total);
        assert_eq!(a.dyn_total, b.dyn_total);
        assert_eq!(a.dyn_in_page, b.dyn_in_page);
    }
    let _ = fs::remove_dir_all(&dir);
}

/// Corrupt and torn shard files degrade to re-simulation and are
/// repaired in place; the run's result is unaffected.
#[test]
fn corruption_resimulates_and_repairs() {
    let dir = temp_store("corrupt");
    let scale = tiny();
    let key = RunKey::new("177.mesa", &scale, StrategyKind::Base, AddressingMode::ViPt);

    let first = Engine::new().with_store(Store::open(&dir).unwrap());
    let original: Arc<RunReport> = first.run(key);

    for vandalism in [
        "complete garbage".to_string(),
        String::new(), // zero-length (crash between create and write)
        "rec 2 runs 0 424242 424242\ntorn".to_string(), // torn length-prefixed tail
    ] {
        for shard in shard_files(&dir) {
            fs::write(&shard, &vandalism).unwrap();
        }
        let engine = Engine::new().with_store(Store::open(&dir).unwrap());
        let report = engine.run(key);
        assert_eq!(engine.simulated_runs(), 1, "corrupt record re-simulates");
        assert_eq!(*report, *original, "result is rebuilt, not garbage");
        // The overwrite repaired the store: next engine is warm again.
        let repaired = Engine::new().with_store(Store::open(&dir).unwrap());
        let again = repaired.run(key);
        assert_eq!(repaired.simulated_runs(), 0, "repaired record serves warm");
        assert_eq!(*again, *original);
    }
    let _ = fs::remove_dir_all(&dir);
}

/// Bumping the record-framing version invalidates every record: a reader
/// built against a different version re-simulates everything (here
/// simulated by rewriting the version token of stored records, which is
/// equivalent).
#[test]
fn format_bump_forces_full_resimulation() {
    let dir = temp_store("format");
    let scale = tiny();
    let keys = sample_keys(&scale);

    let cold = Engine::new().with_store(Store::open(&dir).unwrap());
    let _ = cold.run_many(&keys);

    // Rewrite every record as if it had been framed by an older version.
    let mut rewrote = false;
    for shard in shard_files(&dir) {
        let text = fs::read_to_string(&shard).unwrap();
        let stale = text.replace(
            &format!("rec {STORE_FORMAT_VERSION} "),
            &format!("rec {} ", STORE_FORMAT_VERSION + 1),
        );
        rewrote |= stale != text;
        fs::write(&shard, stale).unwrap();
    }
    assert!(rewrote, "every record starts with the framing version");

    let reader = Engine::new().with_store(Store::open(&dir).unwrap());
    let _ = reader.run_many(&keys);
    assert_eq!(
        reader.simulated_runs(),
        keys.len() as u64,
        "version-mismatched records are all misses"
    );
    // ... and the overwrite re-stamped them with the current version.
    let warm = Engine::new().with_store(Store::open(&dir).unwrap());
    let _ = warm.run_many(&keys);
    assert_eq!(warm.simulated_runs(), 0);
    let _ = fs::remove_dir_all(&dir);
}

/// A PR 2-era store directory (one `<hash>.run` file per key) migrates
/// at open: parseable records keep serving warm — bit-identically — and
/// the old files are consumed.
#[test]
fn v1_store_layout_migrates_transparently() {
    let dir = temp_store("v1");
    let scale = tiny();
    let keys = sample_keys(&scale);

    // Simulate once to learn the ground-truth reports, then write them
    // out in the exact v1 layout into a fresh directory.
    let oracle = Engine::new();
    let reports = oracle.run_many(&keys);
    fs::create_dir_all(&dir).unwrap();
    for (i, (key, report)) in keys.iter().zip(&reports).enumerate() {
        let mut w = cfr_sim::types::RecordWriter::new();
        report.to_record(&mut w);
        let text = format!(
            "cfr-store 1\nkey {}\nreport {}\n",
            Store::key_record(key),
            w.finish()
        );
        fs::write(dir.join(format!("{i:016x}.run")), text).unwrap();
    }

    let migrated = Engine::new().with_store(Store::open(&dir).unwrap());
    let served = migrated.run_many(&keys);
    assert_eq!(
        migrated.simulated_runs(),
        0,
        "migrated v1 records serve warm"
    );
    for (a, b) in reports.iter().zip(&served) {
        assert_eq!(**a, **b, "migration preserves bits");
    }
    let leftovers: Vec<_> = fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .filter(|n| !n.starts_with("shard-") && n != cfr_sim::types::LOCK_FILE_NAME)
        .collect();
    assert!(
        leftovers.is_empty(),
        "only shard files (and the lock probe) remain after migration: {leftovers:?}"
    );
    let _ = fs::remove_dir_all(&dir);
}

/// Engines *without* a store keep PR 1's exact behaviour: every unique
/// key simulates, and the store counters read zero warm.
#[test]
fn storeless_engine_unchanged() {
    let scale = tiny();
    let keys = sample_keys(&scale);
    let engine = Engine::new();
    assert!(engine.store().is_none());
    let _ = engine.run_many(&keys);
    assert_eq!(engine.simulated_runs(), keys.len() as u64);
    assert_eq!(engine.store_warm_runs(), 0);
    assert_eq!(engine.store_cold_runs(), keys.len() as u64);
    let summary = engine.store_summary();
    assert_eq!(summary.runs.warm, 0);
    assert_eq!(summary.walks.warm, 0);
    assert_eq!(summary.programs.warm, 0);
    assert!(engine.summary_line().starts_with("store: disabled"));
}
