//! End-to-end tests of the persistent cross-process run store: a second
//! engine over the same directory (standing in for a second process)
//! simulates nothing and reproduces bit-identical reports; corruption,
//! torn writes, and schema bumps degrade to re-simulation, never a crash.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use cfr_sim::core::{
    table2, Engine, ExperimentScale, RunKey, RunReport, Store, StrategyKind, STORE_SCHEMA_VERSION,
};
use cfr_sim::types::AddressingMode;

fn temp_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cfr-store-it-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn tiny() -> ExperimentScale {
    ExperimentScale {
        max_commits: 15_000,
        seed: 0x5EED,
    }
}

fn sample_keys(scale: &ExperimentScale) -> Vec<RunKey> {
    vec![
        RunKey::new("177.mesa", scale, StrategyKind::Base, AddressingMode::ViPt),
        RunKey::new("177.mesa", scale, StrategyKind::Ia, AddressingMode::ViPt),
        RunKey::new("254.gap", scale, StrategyKind::SoCA, AddressingMode::ViVt),
    ]
}

/// The headline behaviour: everything a first engine simulates, a second
/// engine over the same store serves warm, bit-identically.
#[test]
fn second_engine_simulates_nothing() {
    let dir = temp_store("warm");
    let scale = tiny();
    let keys = sample_keys(&scale);

    let cold = Engine::new().with_store(Store::open(&dir).unwrap());
    let cold_reports = cold.run_many(&keys);
    assert_eq!(cold.simulated_runs(), keys.len() as u64);
    assert_eq!(cold.store_warm_runs(), 0);
    assert_eq!(cold.store_cold_runs(), keys.len() as u64);
    assert_eq!(
        cold.store().unwrap().record_count().unwrap(),
        keys.len(),
        "one record per unique key"
    );

    let warm = Engine::new().with_store(Store::open(&dir).unwrap());
    let warm_reports = warm.run_many(&keys);
    assert_eq!(warm.simulated_runs(), 0, "everything came from disk");
    assert_eq!(warm.store_warm_runs(), keys.len() as u64);
    assert_eq!(warm.store_cold_runs(), 0);
    for (a, b) in cold_reports.iter().zip(&warm_reports) {
        assert_eq!(**a, **b, "warm reports are bit-identical");
    }
    let _ = fs::remove_dir_all(&dir);
}

/// A whole experiment plan (Table 2) is warm on the second engine, and
/// produces identical rows.
#[test]
fn table2_is_warm_on_second_run() {
    let dir = temp_store("table2");
    let scale = tiny();

    let cold = Engine::new().with_store(Store::open(&dir).unwrap());
    let cold_rows = table2(&cold, &scale);
    assert!(cold.simulated_runs() > 0);

    let warm = Engine::new().with_store(Store::open(&dir).unwrap());
    let warm_rows = table2(&warm, &scale);
    assert_eq!(warm.simulated_runs(), 0, "0 cold runs on the second pass");
    for (a, b) in cold_rows.iter().zip(&warm_rows) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.vipt_cycles, b.vipt_cycles);
        assert_eq!(a.vipt_energy_mj.to_bits(), b.vipt_energy_mj.to_bits());
        assert_eq!(a.vivt_cycles, b.vivt_cycles);
        assert_eq!(a.vivt_energy_mj.to_bits(), b.vivt_energy_mj.to_bits());
    }
    let _ = fs::remove_dir_all(&dir);
}

/// Corrupt and torn records degrade to re-simulation and are repaired in
/// place; the run's result is unaffected.
#[test]
fn corruption_resimulates_and_repairs() {
    let dir = temp_store("corrupt");
    let scale = tiny();
    let key = RunKey::new("177.mesa", &scale, StrategyKind::Base, AddressingMode::ViPt);

    let first = Engine::new().with_store(Store::open(&dir).unwrap());
    let original: Arc<RunReport> = first.run(key);
    let path = first.store().unwrap().path_for(&key);

    for vandalism in [
        "complete garbage".to_string(),
        String::new(), // zero-length (crash between create and write)
        fs::read_to_string(&path).unwrap()[..40].to_string(), // torn prefix
    ] {
        fs::write(&path, &vandalism).unwrap();
        let engine = Engine::new().with_store(Store::open(&dir).unwrap());
        let report = engine.run(key);
        assert_eq!(engine.simulated_runs(), 1, "corrupt record re-simulates");
        assert_eq!(*report, *original, "result is rebuilt, not garbage");
        // The overwrite repaired the store: next engine is warm again.
        let repaired = Engine::new().with_store(Store::open(&dir).unwrap());
        let again = repaired.run(key);
        assert_eq!(repaired.simulated_runs(), 0, "repaired record serves warm");
        assert_eq!(*again, *original);
    }
    let _ = fs::remove_dir_all(&dir);
}

/// Bumping the schema version invalidates every record: a reader built
/// against a different version re-simulates everything (here simulated by
/// rewriting the version token of stored files, which is equivalent).
#[test]
fn schema_bump_forces_full_resimulation() {
    let dir = temp_store("schema");
    let scale = tiny();
    let keys = sample_keys(&scale);

    let cold = Engine::new().with_store(Store::open(&dir).unwrap());
    let _ = cold.run_many(&keys);

    // Rewrite every record as if it had been written by an older schema.
    for entry in fs::read_dir(&dir).unwrap().filter_map(Result::ok) {
        let text = fs::read_to_string(entry.path()).unwrap();
        let stale = text.replacen(
            &format!("cfr-store {STORE_SCHEMA_VERSION}"),
            &format!("cfr-store {}", STORE_SCHEMA_VERSION + 1),
            1,
        );
        assert_ne!(stale, text, "every record starts with the magic+version");
        fs::write(entry.path(), stale).unwrap();
    }

    let reader = Engine::new().with_store(Store::open(&dir).unwrap());
    let _ = reader.run_many(&keys);
    assert_eq!(
        reader.simulated_runs(),
        keys.len() as u64,
        "version-mismatched records are all misses"
    );
    // ... and the overwrite re-stamped them with the current version.
    let warm = Engine::new().with_store(Store::open(&dir).unwrap());
    let _ = warm.run_many(&keys);
    assert_eq!(warm.simulated_runs(), 0);
    let _ = fs::remove_dir_all(&dir);
}

/// A record stored under one key's address but describing a different
/// key (hash collision, or a file renamed by hand) is a miss, not a
/// wrong answer.
#[test]
fn mismatched_key_record_is_a_miss() {
    let dir = temp_store("mismatch");
    let scale = tiny();
    let a = RunKey::new("177.mesa", &scale, StrategyKind::Base, AddressingMode::ViPt);
    let b = RunKey::new("177.mesa", &scale, StrategyKind::Ia, AddressingMode::ViPt);

    let engine = Engine::new().with_store(Store::open(&dir).unwrap());
    let (report_a, report_b) = (engine.run(a), engine.run(b));
    assert_ne!(*report_a, *report_b);
    let store = Store::open(&dir).unwrap();
    fs::copy(store.path_for(&b), store.path_for(&a)).unwrap();

    let victim = Engine::new().with_store(Store::open(&dir).unwrap());
    let resolved = victim.run(a);
    assert_eq!(victim.simulated_runs(), 1, "foreign record rejected");
    assert_eq!(*resolved, *report_a, "never serves the wrong report");
    let _ = fs::remove_dir_all(&dir);
}

/// Engines *without* a store keep PR 1's exact behaviour: every unique
/// key simulates, and the store counters read zero warm.
#[test]
fn storeless_engine_unchanged() {
    let scale = tiny();
    let keys = sample_keys(&scale);
    let engine = Engine::new();
    assert!(engine.store().is_none());
    let _ = engine.run_many(&keys);
    assert_eq!(engine.simulated_runs(), keys.len() as u64);
    assert_eq!(engine.store_warm_runs(), 0);
    assert_eq!(engine.store_cold_runs(), keys.len() as u64);
}
