//! The engine's two load-bearing guarantees, asserted end-to-end:
//!
//! 1. **Determinism** — parallel execution produces `RunReport`s
//!    bit-identical to direct serial `Simulator::run_program` calls for
//!    the same keys, regardless of worker count or batch composition, and
//! 2. **Deduplication** — identical keys simulate exactly once per
//!    engine, across batches and across experiment functions
//!    (counter-based assertions on `Engine::simulated_runs`).
//!
//! Every test pins the worker count to 4 (via the rayon global-pool
//! setting — an atomic, not environment mutation) so the cross-thread
//! path is exercised even on single-core CI hosts.

use cfr_sim::core::{
    table2, table5, Engine, ExperimentScale, ItlbChoice, RunKey, Simulator, StrategyKind,
};
use cfr_sim::types::{AddressingMode, TlbOrganization};

fn four_workers() {
    let _ = rayon::ThreadPoolBuilder::new()
        .num_threads(4)
        .build_global();
}

fn tiny() -> ExperimentScale {
    ExperimentScale {
        max_commits: 15_000,
        seed: 0x5EED,
    }
}

/// A key mix spanning strategies, modes, and iTLB shapes — with
/// deliberate duplicates.
fn sample_keys(scale: &ExperimentScale) -> Vec<RunKey> {
    let small_itlb = ItlbChoice::Mono(TlbOrganization::fully_associative(8));
    vec![
        RunKey::new("177.mesa", scale, StrategyKind::Base, AddressingMode::ViPt),
        RunKey::new("177.mesa", scale, StrategyKind::Ia, AddressingMode::ViPt),
        RunKey::new("254.gap", scale, StrategyKind::SoCA, AddressingMode::ViVt),
        RunKey::new("254.gap", scale, StrategyKind::Base, AddressingMode::PiPt),
        RunKey::new("177.mesa", scale, StrategyKind::Base, AddressingMode::ViPt), // dup
        RunKey::new("186.crafty", scale, StrategyKind::HoA, AddressingMode::ViPt)
            .with_itlb(small_itlb),
        RunKey::new("186.crafty", scale, StrategyKind::HoA, AddressingMode::ViPt), // not a dup
    ]
}

/// Parallel engine output must be bit-identical to serial simulation of
/// freshly generated programs (also proving the program cache hands out
/// unmodified programs).
#[test]
fn parallel_reports_match_serial_runs() {
    four_workers();
    let scale = tiny();
    let engine = Engine::new();
    let keys = sample_keys(&scale);
    let parallel = engine.run_many(&keys);
    assert_eq!(parallel.len(), keys.len());
    for (key, report) in keys.iter().zip(&parallel) {
        let profile = engine
            .profiles()
            .iter()
            .find(|p| p.name == key.profile)
            .expect("sample keys use canonical profiles");
        let program = profile.generate();
        let serial = Simulator::run_program(&program, &key.config(), key.strategy, key.mode);
        assert_eq!(
            **report, serial,
            "parallel diverged from serial for {key:?}"
        );
    }
}

/// Duplicated keys — inside a batch and across batches — simulate once.
#[test]
fn duplicate_keys_simulate_once() {
    four_workers();
    let scale = tiny();
    let engine = Engine::new();
    let keys = sample_keys(&scale);
    let unique = {
        let mut u = keys.clone();
        u.sort_by_key(|k| format!("{k:?}"));
        u.dedup();
        u.len() as u64
    };
    let first = engine.run_many(&keys);
    assert_eq!(engine.simulated_runs(), unique);
    // Re-requesting the whole batch (any order) touches the simulator
    // zero times and returns the same shared reports.
    let mut reversed = keys.clone();
    reversed.reverse();
    let second = engine.run_many(&reversed);
    assert_eq!(engine.simulated_runs(), unique);
    for (a, b) in first.iter().zip(second.iter().rev()) {
        assert!(std::sync::Arc::ptr_eq(a, b));
    }
    // Each profile's program was generated exactly once, however many
    // runs shared it.
    assert_eq!(engine.program_cache().generated(), 3);
}

/// Concurrent `run_many` callers with overlapping batches must still
/// simulate each unique key exactly once (in-flight claims, not just a
/// result cache) and all observe identical reports.
#[test]
fn concurrent_batches_simulate_each_key_once() {
    four_workers();
    let scale = tiny();
    let engine = Engine::new();
    let keys = sample_keys(&scale);
    let unique = {
        let mut u = keys.clone();
        u.sort_by_key(|k| format!("{k:?}"));
        u.dedup();
        u.len() as u64
    };
    let batches: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..4).map(|_| s.spawn(|| engine.run_many(&keys))).collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(engine.simulated_runs(), unique);
    for batch in &batches[1..] {
        for (a, b) in batches[0].iter().zip(batch) {
            assert!(std::sync::Arc::ptr_eq(a, b), "all callers share one report");
        }
    }
}

/// Experiment plans sharing an engine dedup against each other: table5's
/// base VI-PT runs are a subset of table2's, so running both costs
/// exactly table2's runs.
#[test]
fn experiments_dedup_across_each_other() {
    four_workers();
    let scale = tiny();
    let engine = Engine::new();
    let t2 = table2(&engine, &scale);
    let after_table2 = engine.simulated_runs();
    assert_eq!(after_table2, 12, "six profiles × (VI-PT, VI-VT) base runs");
    let t5 = table5(&engine, &scale);
    assert_eq!(
        engine.simulated_runs(),
        after_table2,
        "table5 re-uses table2's base VI-PT runs"
    );
    assert_eq!(t2.len(), 6);
    assert_eq!(t5.len(), 6);
}

/// The same plan evaluated on a cold engine and on a warm, shared engine
/// yields identical rows — the property that makes `all_experiments`'
/// output independent of table order and cache state.
#[test]
fn shared_engine_matches_cold_engine() {
    four_workers();
    let scale = tiny();
    let shared = Engine::new();
    let _ = table2(&shared, &scale); // warm the cache with overlapping runs
    let warm_rows = table5(&shared, &scale);
    let cold_rows = table5(&Engine::new(), &scale);
    assert_eq!(format!("{warm_rows:?}"), format!("{cold_rows:?}"));
}
