//! Golden-output regression: the optimized simulator must reproduce the
//! recorded pre-optimization reports **field by field**.
//!
//! The golden records below were captured (via `examples/golden_dump.rs`)
//! from the simulator *before* the hot-loop overhaul — monomorphized
//! pipeline, event-gated issue/completion, MRU TLB/cache fast paths,
//! open-addressed page table. Every one of those changes claims to be
//! observationally invisible; this test is the claim's enforcement: a
//! small engine plan re-simulates each golden key cold and asserts every
//! field of every [`RunReport`] — cycles, all TLB/cache counters, every
//! energy component to the exact f64 bit — equals the recording. The
//! plan also runs twice to pin engine-level determinism.
//!
//! If a PR *intentionally* changes the model (not just its speed), rerun
//! `cargo run --release --example golden_dump` and refresh the records —
//! and say so in the PR, because it moves every experiment.

use cfr_sim::core::{Engine, ItlbChoice, RunKey, RunReport, StrategyKind};
use cfr_sim::types::{AddressingMode, RecordReader, TlbOrganization};
use cfr_sim::workload::profiles;

/// `(golden record, key)` pairs, in `examples/golden_dump.rs` order.
fn golden() -> Vec<(&'static str, RunKey)> {
    let scale = cfr_sim::core::ExperimentScale {
        max_commits: 60_000,
        seed: 0x5EED,
    };
    let two_level = ItlbChoice::TwoLevel(
        TlbOrganization::fully_associative(1),
        TlbOrganization::fully_associative(32),
        1,
    );
    vec![
        (
            "report base vipt 60000 62269 tlbstats2 66318 66313 5 0 0 meter 2 itlb_access comp 66318 0x417a96a9733314f0 itlb_refill comp 5 0x40a3b4cccccccccc breakdown 61976 4342 cpustats 62269 60000 60065 6253 5933 603 0 1059 0 cachestats 66318 66146 172 0 cachestats 17131 7469 9662 5605 cachestats 15439 10864 4575 1 tlbstats2 17131 17041 90 0 0 9783 7790",
            RunKey::new("177.mesa", &scale, StrategyKind::Base, AddressingMode::ViPt),
        ),
        (
            "report ia vipt 60000 61957 tlbstats2 1678 1673 5 0 0 meter 4 cfr_compare comp 6110 0x40edd58000000000 cfr_read comp 64712 0x41122b2cccccd072 itlb_access comp 1678 0x4125872e66666723 itlb_refill comp 5 0x40a3b4cccccccccc breakdown 1 1677 cpustats 61957 60000 60065 6325 5933 604 0 1059 0 cachestats 66390 66241 149 0 cachestats 17131 7469 9662 5605 cachestats 15416 10842 4574 1 tlbstats2 17131 17041 90 0 0 9792 7795",
            RunKey::new("177.mesa", &scale, StrategyKind::Ia, AddressingMode::ViPt),
        ),
        (
            "report hoa pipt 60000 62586 tlbstats2 1130 1125 5 0 0 meter 4 cfr_compare comp 66170 0x4124318800000000 cfr_read comp 65040 0x411242c000000322 itlb_access comp 1130 0x411cfeb00000009f itlb_refill comp 5 0x40a3b4cccccccccc breakdown 1 1129 cpustats 62586 60000 60065 6105 5933 601 0 1059 0 cachestats 66170 65996 174 0 cachestats 17131 7469 9662 5605 cachestats 15441 10864 4577 1 tlbstats2 17131 17041 90 0 0 9783 7783",
            RunKey::new("177.mesa", &scale, StrategyKind::HoA, AddressingMode::PiPt),
        ),
        (
            "report sola vivt 60000 106109 tlbstats2 161 153 8 0 0 meter 3 cfr_read comp 413 0x409daf33333332f7 itlb_access comp 161 0x40f086466666666f itlb_refill comp 8 0x40af87ae147ae147 breakdown 106 55 cpustats 106109 60000 60071 5701 4636 534 3 391 3 cachestats 65772 65198 574 0 cachestats 20640 9071 11569 3118 cachestats 15261 9994 5267 50 tlbstats2 20640 20524 116 0 0 15695 5237",
            RunKey::new("254.gap", &scale, StrategyKind::SoLA, AddressingMode::ViVt),
        ),
        (
            "report opt vipt 60000 105628 tlbstats2 440 432 8 0 0 meter 5 cfr_read comp 65288 0x41125493333335f2 itlb_l1_access comp 440 0x40bff80000000048 itlb_l1_refill comp 440 0x40c32e6666666645 itlb_l2_access comp 440 0x4106947fffffffcd itlb_l2_refill comp 8 0x40af87ae147ae147 breakdown 5 435 cpustats 105628 60000 60068 5660 4633 536 0 391 3 cachestats 65728 65155 573 0 cachestats 20640 9073 11567 3117 cachestats 15257 9992 5265 50 tlbstats2 20640 20524 116 0 0 15705 5236",
            RunKey::new("254.gap", &scale, StrategyKind::Opt, AddressingMode::ViPt)
                .with_itlb(two_level),
        ),
        (
            "report soca vipt 60000 113337 tlbstats2 2796 2791 5 0 0 meter 3 cfr_read comp 62835 0x4111a44400000694 itlb_access comp 2796 0x4131ef8e6666669e itlb_refill comp 5 0x40a3b4cccccccccc breakdown 1 2795 cpustats 113337 60000 60071 5560 4633 536 0 359 0 cachestats 65631 64565 1066 0 cachestats 20638 8487 12151 3188 cachestats 16405 9151 7254 704 tlbstats2 20638 20591 47 0 0 15704 5240",
            RunKey::new("254.gap", &scale, StrategyKind::SoCA, AddressingMode::ViPt)
                .with_il1_bytes(2048)
                .with_page_bytes(16384),
        ),
    ]
}

fn parse(record: &str) -> RunReport {
    let mut r = RecordReader::new(record);
    let report = RunReport::from_record(&mut r).expect("golden record parses");
    r.finish().expect("no trailing golden tokens");
    report
}

/// Asserts every field of `got` equals `want`, naming the field (and the
/// run) in the failure message — far more diagnosable than one big
/// `assert_eq!` over the whole struct.
fn assert_report_fields(ctx: &str, got: &RunReport, want: &RunReport) {
    assert_eq!(got.strategy, want.strategy, "{ctx}: strategy");
    assert_eq!(got.mode, want.mode, "{ctx}: mode");
    assert_eq!(got.committed, want.committed, "{ctx}: committed");
    assert_eq!(got.cycles, want.cycles, "{ctx}: cycles");
    assert_eq!(got.itlb, want.itlb, "{ctx}: iTLB counters");
    assert_eq!(got.breakdown, want.breakdown, "{ctx}: lookup breakdown");
    assert_eq!(got.cpu.fetched, want.cpu.fetched, "{ctx}: fetched");
    assert_eq!(
        got.cpu.wrong_path_fetched, want.cpu.wrong_path_fetched,
        "{ctx}: wrong-path fetched"
    );
    assert_eq!(got.cpu.branches, want.cpu.branches, "{ctx}: branches");
    assert_eq!(
        got.cpu.mispredicts, want.cpu.mispredicts,
        "{ctx}: mispredicts"
    );
    assert_eq!(got.cpu.loads, want.cpu.loads, "{ctx}: loads");
    assert_eq!(got.cpu.stores, want.cpu.stores, "{ctx}: stores");
    assert_eq!(got.cpu.il1, want.cpu.il1, "{ctx}: iL1 counters");
    assert_eq!(got.cpu.dl1, want.cpu.dl1, "{ctx}: dL1 counters");
    assert_eq!(got.cpu.l2, want.cpu.l2, "{ctx}: L2 counters");
    assert_eq!(got.cpu.dtlb, want.cpu.dtlb, "{ctx}: dTLB counters");
    assert_eq!(
        got.cpu.crossings_branch, want.cpu.crossings_branch,
        "{ctx}: branch crossings"
    );
    assert_eq!(
        got.cpu.crossings_boundary, want.cpu.crossings_boundary,
        "{ctx}: boundary crossings"
    );
    // Energy: every component present, event-for-event and bit-for-bit.
    for (name, want_c) in want.energy.iter() {
        assert_eq!(
            got.energy.events(name),
            want_c.events,
            "{ctx}: energy events for {name}"
        );
        assert_eq!(
            got.energy.component_pj(name).to_bits(),
            want_c.total_pj.to_bits(),
            "{ctx}: exact energy bits for {name}"
        );
    }
    assert_eq!(got.energy, want.energy, "{ctx}: full energy meter");
    // Belt and braces: full struct equality after the field-wise walk.
    assert_eq!(got, want, "{ctx}: full report");
}

#[test]
fn optimized_simulator_reproduces_recorded_seed_reports() {
    let cases = golden();
    let keys: Vec<RunKey> = cases.iter().map(|(_, k)| *k).collect();
    // No store: the goldens must be *simulated*, never read warm.
    let engine = Engine::new();
    let first = engine.run_many(&keys);
    assert_eq!(engine.store_warm_runs(), 0, "plan ran cold");
    for ((record, key), got) in cases.iter().zip(&first) {
        let want = parse(record);
        assert_report_fields(&format!("{key:?}"), got, &want);
    }
    // The same plan on a second engine is bit-identical (determinism is
    // what makes the goldens meaningful at all).
    let second = Engine::new().run_many(&keys);
    for ((a, b), (_, key)) in first.iter().zip(&second).zip(&cases) {
        assert_eq!(**a, **b, "second engine diverged for {key:?}");
    }
}

#[test]
fn golden_keys_cover_the_feature_matrix() {
    // The golden set must keep covering all three addressing modes, a
    // two-level iTLB, both config overrides, and several strategies — so
    // a hot-path regression in any of those paths trips the goldens.
    let cases = golden();
    let modes: std::collections::HashSet<_> = cases.iter().map(|(_, k)| k.mode).collect();
    assert_eq!(modes.len(), 3, "all addressing modes covered");
    assert!(cases
        .iter()
        .any(|(_, k)| matches!(k.itlb, ItlbChoice::TwoLevel(..))));
    assert!(cases.iter().any(|(_, k)| k.il1_bytes.is_some()));
    assert!(cases.iter().any(|(_, k)| k.page_bytes.is_some()));
    let profiles_used: std::collections::HashSet<_> =
        cases.iter().map(|(_, k)| k.profile).collect();
    assert!(profiles_used.len() >= 2);
    for name in &profiles_used {
        assert!(
            profiles::all().iter().any(|p| p.name == *name),
            "golden profile {name} is registered"
        );
    }
}
