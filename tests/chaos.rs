//! Chaos-layer integration tests: deterministic fault schedules, torn-
//! tail crash recovery through the injected-fault backend, and the TCP
//! fault proxy against a live store daemon. The invariant under every
//! fault is the store contract's: **any failure is a miss, never a
//! hang, a crash, or wrong bytes.**

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use cfr_sim::types::{
    ArtifactStore, ChaosBackend, ChaosProxy, FaultPlan, GcPolicy, RemoteStore, ServerConfig,
    StoreBackend, StoreServer,
};

fn temp_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cfr-chaos-it-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn open(dir: &PathBuf) -> ArtifactStore {
    ArtifactStore::open(dir, GcPolicy::unbounded()).unwrap()
}

/// The fault schedule is a pure function of (seed, domain, op): the
/// same seed replays the same faults, different seeds diverge. This is
/// what makes a failing chaos-soak seed reproducible.
#[test]
fn fault_schedules_replay_by_seed() {
    let plan = FaultPlan::new(42);
    let replay = FaultPlan::new(42);
    let other = FaultPlan::new(43);
    let mut diverged = false;
    for op in 0..5_000u64 {
        assert_eq!(plan.backend_fault(op), replay.backend_fault(op));
        assert_eq!(plan.proxy_fault(op), replay.proxy_fault(op));
        diverged |= plan.backend_fault(op) != other.backend_fault(op)
            || plan.proxy_fault(op) != other.proxy_fault(op);
    }
    assert!(diverged, "different seeds must draw different schedules");
}

/// A crash mid-append (a torn tail shorter than the record) must cost
/// exactly the torn record: every earlier record survives bit-for-bit,
/// the torn key reads as a miss, and the shard accepts appends again.
#[test]
fn torn_tail_crash_recovery_preserves_earlier_records() {
    let dir = temp_store("torn-tail");

    // Session 1: a healthy store writes ten records and exits cleanly.
    {
        let store = open(&dir);
        for i in 0..10 {
            store.save("runs", &format!("key {i}"), &format!("value {i} payload"));
        }
    }

    // Session 2: every save draws a torn-append fault — the bytes stop
    // partway through the record, as if the process died mid-write.
    {
        let inner = Arc::new(open(&dir));
        let chaos = ChaosBackend::new(inner, FaultPlan::quiet(7).with("torn=1"))
            .with_shard_dir(dir.clone());
        chaos.save("runs", "torn key", "this record never fully lands");
        assert!(chaos.injected_faults() >= 1);
    }

    // Session 3 (recovery): reopen from the bytes on disk.
    let recovered = open(&dir);
    for i in 0..10 {
        assert_eq!(
            recovered.load("runs", &format!("key {i}")).as_deref(),
            Some(format!("value {i} payload").as_str()),
            "records before the torn tail must survive bit-for-bit"
        );
    }
    assert_eq!(
        recovered.load("runs", "torn key"),
        None,
        "the torn record is resynced past, never served partially"
    );
    // Every record the recovered index points at reads back clean.
    let (readable, corrupt) = recovered.verify_records();
    assert_eq!((readable, corrupt), (10, 0));
    // The shard accepts appends again, including the once-torn key.
    recovered.save("runs", "torn key", "second attempt lands");
    assert_eq!(
        recovered.load("runs", "torn key").as_deref(),
        Some("second attempt lands")
    );
    let _ = fs::remove_dir_all(&dir);
}

/// Forced backend faults degrade to the store contract's failure mode —
/// a miss or a counted dropped write — and a quiet plan is transparent.
#[test]
fn forced_backend_faults_degrade_to_misses() {
    let dir = temp_store("forced-faults");
    let inner = Arc::new(open(&dir));
    inner.save("runs", "k", "stored value");

    let missy = ChaosBackend::new(
        Arc::clone(&inner) as Arc<dyn StoreBackend>,
        FaultPlan::quiet(1).with("miss=1"),
    );
    assert_eq!(missy.load("runs", "k"), None, "forced miss hides the hit");

    let droppy = ChaosBackend::new(
        Arc::clone(&inner) as Arc<dyn StoreBackend>,
        FaultPlan::quiet(2).with("save_err=1"),
    );
    droppy.save("runs", "dropped", "never lands");
    assert_eq!(inner.load("runs", "dropped"), None);
    assert!(droppy.write_errors() >= 1, "dropped saves are counted");

    let quiet = ChaosBackend::new(
        Arc::clone(&inner) as Arc<dyn StoreBackend>,
        FaultPlan::quiet(3),
    );
    assert_eq!(quiet.load("runs", "k").as_deref(), Some("stored value"));
    quiet.save("runs", "k2", "through the quiet layer");
    assert_eq!(
        inner.load("runs", "k2").as_deref(),
        Some("through the quiet layer")
    );
    let _ = fs::remove_dir_all(&dir);
}

/// A quiet proxy is byte-transparent; a reset-everything proxy degrades
/// every exchange to a miss without hanging the client or harming the
/// daemon behind it.
#[test]
fn chaos_proxy_quiet_passthrough_and_reset_degradation() {
    let dir = temp_store("proxy");
    let store = Arc::new(open(&dir));
    let server = StoreServer::bind(store, "127.0.0.1:0", ServerConfig::default()).unwrap();

    // Quiet: the proxied client round-trips exactly like a direct one.
    let mut quiet = ChaosProxy::start(server.addr(), FaultPlan::quiet(11)).unwrap();
    let proxied = RemoteStore::new(quiet.addr().to_string());
    proxied.save("runs", "via-proxy", "proxied bytes survive");
    assert_eq!(
        proxied.load("runs", "via-proxy").as_deref(),
        Some("proxied bytes survive")
    );
    quiet.stop();

    // Hostile: every forwarded chunk drops the connection.
    let mut hostile =
        ChaosProxy::start(server.addr(), FaultPlan::quiet(12).with("reset=1")).unwrap();
    let broken = RemoteStore::new(hostile.addr().to_string());
    let t0 = Instant::now();
    assert_eq!(
        broken.load("runs", "via-proxy"),
        None,
        "a reset connection is a miss, not a hang or a panic"
    );
    assert!(
        t0.elapsed() < Duration::from_secs(15),
        "degradation must resolve within the client I/O timeout"
    );
    assert!(hostile.injected_faults() >= 1);
    hostile.stop();

    // The daemon behind the chaos is untouched: a direct client still
    // sees the record.
    let direct = RemoteStore::new(server.addr().to_string());
    assert_eq!(
        direct.load("runs", "via-proxy").as_deref(),
        Some("proxied bytes survive")
    );
    server.shutdown();
    let _ = fs::remove_dir_all(&dir);
}
