//! Failure injection: OS-level disturbances (context-switch storms, page
//! eviction/remap storms) must never break translation correctness — only
//! cost energy and cycles. Exercises the §3.2 OS-support surface.

use cfr_sim::core::{Strategy, StrategyKind};
use cfr_sim::cpu::{FetchEvent, FetchKind, FetchTranslator};
use cfr_sim::energy::EnergyModel;
use cfr_sim::mem::{PageTable, TlbConfig};
use cfr_sim::types::{AddressingMode, PageGeometry, Protection, VirtAddr};
use cfr_sim::workload::SplitMix64;

fn fetch(pc: u64) -> FetchEvent {
    FetchEvent {
        pc: VirtAddr::new(pc),
        kind: FetchKind::Sequential {
            page_crossed: false,
        },
        wrong_path: false,
    }
}

/// A control transfer to `pc`: the software schemes' contract is that page
/// changes arrive as branch events (the instrumented layout guarantees it),
/// so the harness emulates the branch-predictor notification plus the
/// branch-target fetch kind.
fn transfer(s: &mut Strategy, from: u64, to: u64) -> FetchEvent {
    s.on_branch_predicted(VirtAddr::new(from), Some(VirtAddr::new(to)));
    FetchEvent {
        pc: VirtAddr::new(to),
        kind: FetchKind::BranchTarget {
            in_page_marked: false,
            from_boundary: false,
        },
        wrong_path: false,
    }
}

fn strategy(kind: StrategyKind) -> Strategy {
    Strategy::new(
        kind,
        AddressingMode::ViPt,
        PageGeometry::default_4k(),
        TlbConfig::default_itlb(),
        EnergyModel::default(),
    )
}

/// Under a context-switch storm every strategy keeps translating correctly:
/// the frame returned always agrees with the page table.
#[test]
fn context_switch_storm_stays_correct() {
    let geom = PageGeometry::default_4k();
    for kind in [StrategyKind::HoA, StrategyKind::Ia, StrategyKind::Opt] {
        let mut s = strategy(kind);
        let mut pt = PageTable::new();
        let mut rng = SplitMix64::new(7);
        let mut pc = 0x40_0000u64;
        for i in 0..5_000u64 {
            let ev = if rng.chance(0.1) {
                let next = 0x40_0000 + rng.below(64) * 4096 + rng.below(512) * 4;
                let ev = transfer(&mut s, pc, next);
                pc = next;
                ev
            } else {
                pc += 4;
                fetch(pc)
            };
            let out = s.on_fetch(&ev, &mut pt);
            let expected = pt
                .probe(geom.vpn(VirtAddr::new(pc)))
                .expect("translated pages are mapped")
                .0;
            assert_eq!(out.pfn, Some(expected), "{kind} diverged at fetch {i}");
            if rng.chance(0.05) {
                s.on_context_switch();
            }
        }
        assert!(s.context_switches() > 100);
    }
}

/// Remapping the *current* page mid-run: the CFR and iTLB are shot down
/// together, and the very next fetch sees the fresh frame — never the stale
/// one. This is the §3.2 invariant the whole mechanism's safety rests on.
#[test]
fn eviction_storm_never_serves_stale_frames() {
    let geom = PageGeometry::default_4k();
    for kind in StrategyKind::ALL {
        let mut s = strategy(kind);
        let mut pt = PageTable::new();
        let mut rng = SplitMix64::new(13);
        let mut pc = 0x40_0000u64;
        for i in 0..5_000u64 {
            let ev = if rng.chance(0.1) {
                let next = 0x40_0000 + rng.below(32) * 4096;
                let ev = transfer(&mut s, pc, next);
                pc = next;
                ev
            } else {
                pc += 4;
                fetch(pc)
            };
            let out = s.on_fetch(&ev, &mut pt);
            let expected = pt.probe(geom.vpn(VirtAddr::new(pc))).unwrap().0;
            assert_eq!(out.pfn, Some(expected), "{kind} stale frame at {i}");
            if rng.chance(0.02) {
                // The OS remaps the page we are executing on.
                let vpn = geom.vpn(VirtAddr::new(pc));
                pt.remap(vpn).expect("page is mapped");
                s.on_page_evicted(vpn);
            }
        }
    }
}

/// Context switches cost energy (re-established CFR = extra lookups), so a
/// switch-heavy run must consume strictly more than an undisturbed one.
#[test]
fn context_switches_cost_energy() {
    let mut pt = PageTable::new();
    let mut calm = strategy(StrategyKind::Ia);
    for i in 0..2_000u64 {
        calm.on_fetch(&fetch(0x40_0000 + i * 4), &mut pt);
    }
    let mut stormy = strategy(StrategyKind::Ia);
    for i in 0..2_000u64 {
        stormy.on_fetch(&fetch(0x40_0000 + i * 4), &mut pt);
        if i % 50 == 0 {
            stormy.on_context_switch();
        }
    }
    assert!(stormy.meter().total_pj() > calm.meter().total_pj());
    assert!(stormy.itlb_stats().accesses > calm.itlb_stats().accesses);
}

/// Protection bits ride the CFR: after a lookup of a code page, the CFR
/// reports executable permissions — the supervisor-owned state the paper
/// says a program "cannot change without going via the OS".
#[test]
fn protection_travels_with_the_cfr() {
    let mut s = strategy(StrategyKind::HoA);
    let mut pt = PageTable::new();
    s.on_fetch(&fetch(0x40_0000), &mut pt);
    assert!(s.cfr().is_valid());
    assert_eq!(s.cfr().prot(), Protection::code());
    assert!(s.cfr().prot().executable());
    assert!(!s.cfr().prot().writable());
}
