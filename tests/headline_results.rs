//! Integration tests: the paper's headline results must reproduce in shape
//! at reduced scale, across crates (workload → compiler → CPU → strategies).

use cfr_sim::core::{
    fig6, table6, table6_itlbs, Engine, ExperimentScale, SimConfig, Simulator, StrategyKind,
};
use cfr_sim::types::AddressingMode;
use cfr_sim::workload::{profiles, ProgramCache};

fn quick() -> SimConfig {
    let mut cfg = SimConfig::default_config();
    cfg.max_commits = 120_000;
    cfg
}

/// Figure 4 (VI-PT): every scheme saves the overwhelming majority of iTLB
/// energy, with the paper's ordering.
#[test]
fn figure4_vipt_shape() {
    let cfg = quick();
    for profile in [profiles::mesa(), profiles::eon()] {
        let program = profile.generate();
        let run = |k| Simulator::run_program(&program, &cfg, k, AddressingMode::ViPt);
        let base = run(StrategyKind::Base);
        let opt = run(StrategyKind::Opt);
        let hoa = run(StrategyKind::HoA);
        let soca = run(StrategyKind::SoCA);
        let sola = run(StrategyKind::SoLA);
        let ia = run(StrategyKind::Ia);
        let norm = |r: &cfr_sim::core::RunReport| r.energy_vs(&base);
        // Paper: HoA ~5.7%, SoCA ~12.2%, SoLA ~5.0%, IA ~3.8%, OPT ~3.2%.
        assert!(norm(&hoa) < 0.15, "{}: HoA {}", profile.name, norm(&hoa));
        assert!(norm(&soca) < 0.25, "{}: SoCA {}", profile.name, norm(&soca));
        assert!(norm(&sola) < 0.15, "{}: SoLA {}", profile.name, norm(&sola));
        assert!(norm(&ia) < 0.12, "{}: IA {}", profile.name, norm(&ia));
        // Orderings.
        assert!(
            norm(&opt) <= norm(&ia),
            "{}: OPT is the floor",
            profile.name
        );
        assert!(
            norm(&sola) < norm(&soca),
            "{}: SoLA beats SoCA",
            profile.name
        );
        assert!(norm(&ia) < norm(&hoa), "{}: IA beats HoA", profile.name);
    }
}

/// Figure 4 (VI-VT): savings exist and SoCA remains the worst scheme.
#[test]
fn figure4_vivt_shape() {
    let cfg = quick();
    let profile = profiles::gap();
    let program = profile.generate();
    let run = |k| Simulator::run_program(&program, &cfg, k, AddressingMode::ViVt);
    let base = run(StrategyKind::Base);
    let opt = run(StrategyKind::Opt);
    let hoa = run(StrategyKind::HoA);
    let soca = run(StrategyKind::SoCA);
    let ia = run(StrategyKind::Ia);
    assert!(opt.energy_vs(&base) < 0.6);
    assert!(hoa.energy_vs(&base) < 0.7);
    assert!(ia.energy_vs(&base) < soca.energy_vs(&base) * 1.02);
}

/// Figure 5: IA never slows VI-VT down, and VI-PT cycles are essentially
/// scheme-independent (the paper: "no significant difference").
#[test]
fn figure5_cycles() {
    let cfg = quick();
    let profile = profiles::vortex();
    let program = profile.generate();
    let vivt_base =
        Simulator::run_program(&program, &cfg, StrategyKind::Base, AddressingMode::ViVt);
    let vivt_ia = Simulator::run_program(&program, &cfg, StrategyKind::Ia, AddressingMode::ViVt);
    assert!(
        vivt_ia.cycles as f64 <= vivt_base.cycles as f64 * 1.005,
        "IA must not hurt VI-VT: {} vs {}",
        vivt_ia.cycles,
        vivt_base.cycles
    );
    let vipt_base =
        Simulator::run_program(&program, &cfg, StrategyKind::Base, AddressingMode::ViPt);
    let vipt_ia = Simulator::run_program(&program, &cfg, StrategyKind::Ia, AddressingMode::ViPt);
    let ratio = vipt_ia.cycles as f64 / vipt_base.cycles as f64;
    assert!(
        (0.98..1.02).contains(&ratio),
        "VI-PT cycles must be scheme-independent: {ratio}"
    );
}

/// Table 3's shape: SoCA forces the most BRANCH-case lookups, SoLA fewer,
/// IA fewest; the BOUNDARY column is (near-)identical across the three.
#[test]
fn table3_lookup_ordering() {
    let cfg = quick();
    let profile = profiles::crafty();
    let program = profile.generate();
    let run = |k| Simulator::run_program(&program, &cfg, k, AddressingMode::ViPt);
    let soca = run(StrategyKind::SoCA);
    let sola = run(StrategyKind::SoLA);
    let ia = run(StrategyKind::Ia);
    assert!(
        soca.breakdown.branch > sola.breakdown.branch,
        "SoCA {} vs SoLA {}",
        soca.breakdown.branch,
        sola.breakdown.branch
    );
    assert!(
        sola.breakdown.branch > ia.breakdown.branch,
        "SoLA {} vs IA {}",
        sola.breakdown.branch,
        ia.breakdown.branch
    );
    assert_eq!(soca.breakdown.boundary, sola.breakdown.boundary);
}

/// Table 6's shape: as the iTLB shrinks, base energy shrinks slightly but
/// VI-VT base cycles explode (misses), while IA's energy stays near-flat
/// and its cycles track far better.
#[test]
fn table6_small_itlb_pressure() {
    let scale = ExperimentScale {
        max_commits: 120_000,
        seed: 0x5EED,
    };
    let rows = table6(&Engine::new(), &scale);
    let labels = table6_itlbs();
    let mesa_1 = rows
        .iter()
        .find(|r| r.name == "177.mesa" && r.itlb == labels[0].0)
        .unwrap();
    let mesa_32 = rows
        .iter()
        .find(|r| r.name == "177.mesa" && r.itlb == labels[3].0)
        .unwrap();
    // 1-entry: base VI-VT runs much slower than 32-entry (50-cycle walks).
    assert!(mesa_1.vivt_cycles[0] > mesa_32.vivt_cycles[0]);
    // IA recovers a large share of that gap.
    assert!(mesa_1.vivt_cycles[2] < mesa_1.vivt_cycles[0]);
    // Energy: IA's absolute VI-PT energy at 32 entries is a tiny fraction
    // of base.
    assert!(mesa_32.vipt_energy_mj[2] < 0.12 * mesa_32.vipt_energy_mj[0]);
}

/// Figure 6's shape: a (1+32) two-level filter TLB (base) consumes more
/// energy than a monolithic 32 with IA.
#[test]
fn figure6_two_level_comparison() {
    let scale = ExperimentScale {
        max_commits: 120_000,
        seed: 0x5EED,
    };
    let rows = fig6(&Engine::new(), &scale);
    let small: Vec<_> = rows.iter().filter(|r| r.config == "1+32").collect();
    assert_eq!(small.len(), 6);
    let avg: f64 = small.iter().map(|r| r.energy_ratio).sum::<f64>() / 6.0;
    assert!(
        avg > 1.2,
        "two-level base should cost >120% of mono+IA: {avg}"
    );
    // And it should not be meaningfully faster.
    let cyc: f64 = small.iter().map(|r| r.cycle_ratio).sum::<f64>() / 6.0;
    assert!(cyc > 0.99, "two-level pays serial L2 lookups: {cyc}");
}

/// Table 8's shape: PI-PT base is the slowest configuration; IA repairs
/// most of the damage while slashing energy.
#[test]
fn table8_pipt_study() {
    let cfg = quick();
    let profile = profiles::fma3d();
    let program = profile.generate();
    let pipt_base =
        Simulator::run_program(&program, &cfg, StrategyKind::Base, AddressingMode::PiPt);
    let pipt_ia = Simulator::run_program(&program, &cfg, StrategyKind::Ia, AddressingMode::PiPt);
    let vipt_base =
        Simulator::run_program(&program, &cfg, StrategyKind::Base, AddressingMode::ViPt);
    assert!(pipt_base.cycles > vipt_base.cycles);
    assert!(pipt_ia.cycles < pipt_base.cycles);
    assert!(pipt_ia.itlb_energy_mj() < 0.15 * pipt_base.itlb_energy_mj());
    // IA brings PI-PT within striking distance of VI-PT (paper: ~5.7%).
    let gap = pipt_ia.cycles as f64 / vipt_base.cycles as f64;
    assert!(gap < 1.15, "PI-PT+IA within 15% of VI-PT base: {gap}");
}

/// Energy accounting must be internally consistent: counted events times
/// per-event prices equals the meter total, and iTLB access counts match
/// the behavioural model's.
#[test]
fn accounting_consistency() {
    let cfg = quick();
    let profile = profiles::mesa();
    let program = profile.generate();
    for kind in StrategyKind::ALL {
        for mode in AddressingMode::ALL {
            let r = Simulator::run_program(&program, &cfg, kind, mode);
            assert_eq!(
                r.energy.events("itlb_access"),
                r.itlb.accesses,
                "{kind} {mode}: meter vs TLB"
            );
            assert_eq!(
                r.energy.events("itlb_refill"),
                r.itlb.misses,
                "{kind} {mode}: refills vs misses"
            );
            assert_eq!(r.committed, cfg.max_commits);
        }
    }
}

/// The six profiles all run end-to-end under the default configuration.
#[test]
fn all_profiles_run() {
    let mut cfg = quick();
    cfg.max_commits = 40_000;
    let programs = ProgramCache::new();
    for p in profiles::all() {
        let r = Simulator::run_profile(&p, &programs, &cfg, StrategyKind::Ia, AddressingMode::ViPt);
        assert_eq!(r.committed, 40_000, "{}", p.name);
        assert!(r.cpu.ipc() > 0.1 && r.cpu.ipc() <= 4.0, "{}", p.name);
    }
}
