//! Property-based tests on the core data structures and invariants:
//! cache vs reference model, TLB translation consistency and first-touch
//! protection, the two-level TLB's serial miss path, store-codec
//! round-trips, page geometry round-trips, layout/walker invariants, and
//! CFR trust.
//!
//! Runs on the vendored `proptest` shim — seeded deterministic generator
//! plus the `proptest!`/`prop_assert*` macro subset, see
//! `vendor/README.md`. The sources are compatible with the real crate,
//! which is the usual one-line swap in the root `Cargo.toml`.

use proptest::prelude::*;

use cfr_sim::core::{Cfr, ExperimentScale, ItlbChoice, RunKey, Store, StrategyKind};
use cfr_sim::energy::{EnergyMeter, EnergyModel};
use cfr_sim::mem::{
    AccessKind, Cache, CacheConfig, CacheStats, PageTable, Tlb, TlbConfig, TlbStats, TwoLevelTlb,
};
use cfr_sim::types::{
    AddressingMode, CacheOrganization, PageGeometry, Pfn, Protection, RecordReader, RecordWriter,
    TlbOrganization, VirtAddr, Vpn,
};
use cfr_sim::workload::{generate, profiles, GeneratorParams, LaidProgram, Walker};

proptest! {
    /// Page geometry: split-and-join is the identity for every address and
    /// every power-of-two page size.
    #[test]
    fn geometry_round_trip(addr in 0u64..u64::MAX / 2, shift in 4u32..20) {
        let geom = PageGeometry::new(1 << shift).unwrap();
        let va = VirtAddr::new(addr);
        let rebuilt = geom.join_virt(geom.vpn(va), geom.offset(va));
        prop_assert_eq!(rebuilt, va);
        prop_assert!(geom.offset(va) < geom.page_bytes());
    }

    /// `same_page` is exactly "equal VPN".
    #[test]
    fn same_page_iff_same_vpn(a in 0u64..1 << 40, b in 0u64..1 << 40) {
        let geom = PageGeometry::default_4k();
        let (va, vb) = (VirtAddr::new(a), VirtAddr::new(b));
        prop_assert_eq!(geom.same_page(va, vb), geom.vpn(va) == geom.vpn(vb));
    }

    /// A fully-associative cache of N blocks must hit on any address that
    /// is among the N most recently touched distinct blocks (true LRU).
    #[test]
    fn cache_lru_recency(addrs in proptest::collection::vec(0u64..0x4000, 1..200)) {
        let blocks = 8usize;
        let mut cache = Cache::new(CacheConfig {
            organization: CacheOrganization {
                size_bytes: (blocks * 32) as u64,
                associativity: blocks as u32,
                block_bytes: 32,
            },
            hit_latency: 1,
        });
        let mut recency: Vec<u64> = Vec::new(); // most recent block last
        for &a in &addrs {
            let block = a >> 5;
            let expected_hit = recency.iter().rev().take(blocks).any(|&b| b == block);
            let r = cache.access(a, AccessKind::Read);
            prop_assert_eq!(r.hit, expected_hit, "addr {:#x}", a);
            recency.retain(|&b| b != block);
            recency.push(block);
        }
    }

    /// The TLB never returns a translation that disagrees with the page
    /// table, across arbitrary lookup/invalidate sequences.
    #[test]
    fn tlb_translation_consistency(
        ops in proptest::collection::vec((0u64..64, proptest::bool::ANY), 1..300)
    ) {
        let mut tlb = Tlb::new(TlbConfig {
            organization: TlbOrganization::fully_associative(8),
            miss_penalty: 50,
        });
        let mut pt = PageTable::new();
        for (page, invalidate) in ops {
            let vpn = Vpn::new(page);
            if invalidate {
                tlb.invalidate(vpn);
            } else {
                let r = tlb.lookup(vpn, &mut pt, Protection::code());
                let (expected, _) = pt.translate(vpn, Protection::code());
                prop_assert_eq!(r.pfn, expected);
            }
        }
        prop_assert!(tlb.resident_entries() <= 8);
    }

    /// A dTLB refill allocates pages with the *requested* protection
    /// (regression: `lookup` used to hardcode code protection, and the
    /// page table's first-touch-wins made it permanent), and the lookup
    /// result always reports the protection the page was allocated with.
    #[test]
    fn tlb_refill_respects_requested_protection(
        pages in proptest::collection::vec((0u64..64, proptest::bool::ANY), 1..200)
    ) {
        let mut dtlb = Tlb::new(TlbConfig::default_dtlb());
        let mut pt = PageTable::new();
        let mut first_touch: std::collections::HashMap<u64, Protection> =
            std::collections::HashMap::new();
        for (page, as_data) in pages {
            let requested = if as_data { Protection::data() } else { Protection::code() };
            let expected = *first_touch.entry(page).or_insert(requested);
            let r = dtlb.lookup(Vpn::new(page), &mut pt, requested);
            prop_assert_eq!(r.prot, expected, "page {} first touch wins", page);
            prop_assert_eq!(pt.probe(Vpn::new(page)).unwrap().1, expected);
        }
    }

    /// The two-level TLB's serial miss path: whatever the lookup
    /// sequence, an L2 hit never touches the page table (no premature
    /// walk, no allocation), full misses map exactly one page, and the
    /// translation always agrees with the page table.
    #[test]
    fn two_level_serial_path_consistency(
        pages in proptest::collection::vec(0u64..24, 1..300)
    ) {
        let mut two = TwoLevelTlb::fig6_small();
        let mut pt = PageTable::new();
        for page in pages {
            let vpn = Vpn::new(page);
            let mapped_before = pt.mapped_pages();
            let was_mapped = pt.probe(vpn).is_some();
            let r = two.lookup(vpn, &mut pt, Protection::code());
            match r.l2_hit {
                None | Some(true) => prop_assert_eq!(
                    pt.mapped_pages(), mapped_before,
                    "page {}: TLB hits must not touch the page table", page
                ),
                Some(false) => prop_assert_eq!(
                    pt.mapped_pages(),
                    mapped_before + usize::from(!was_mapped)
                ),
            }
            prop_assert_eq!(r.pfn, pt.probe(vpn).unwrap().0);
            // Serial penalties: 0 on an L1 hit, the L2 latency on an L2
            // hit, latency + walk on a full miss.
            let expected_penalty = match r.l2_hit {
                None => 0,
                Some(true) => 1,
                Some(false) => 1 + 50,
            };
            prop_assert_eq!(r.penalty, expected_penalty);
        }
        // The L2 saw exactly the L1's misses.
        prop_assert_eq!(two.l2().stats().accesses, two.l1().stats().misses);
    }

    /// The page table is injective: distinct pages never share a frame.
    #[test]
    fn page_table_injective(pages in proptest::collection::hash_set(0u64..1 << 30, 1..200)) {
        let mut pt = PageTable::new();
        let mut frames = std::collections::HashSet::new();
        for p in pages {
            let (pfn, _) = pt.translate(Vpn::new(p), Protection::code());
            prop_assert!(frames.insert(pfn), "frame reused");
        }
    }

    /// Energy model monotonicity: more CAM entries never cost less.
    #[test]
    fn cam_energy_monotone(a in 2u32..512, b in 2u32..512) {
        let model = EnergyModel::default();
        let (small, large) = (a.min(b), a.max(b));
        let e_small = model.tlb_access_pj(&TlbOrganization::fully_associative(small));
        let e_large = model.tlb_access_pj(&TlbOrganization::fully_associative(large));
        prop_assert!(e_small <= e_large);
    }

    /// CFR trust: after `load(v)`, `matches(v)` holds and `matches(w)` for
    /// any other page does not; `invalidate` clears everything.
    #[test]
    fn cfr_trust(v in 0u64..1 << 20, w in 0u64..1 << 20, frame in 0u64..1 << 20) {
        let mut cfr = Cfr::new();
        cfr.load(Vpn::new(v), Pfn::new(frame), Protection::code());
        prop_assert!(cfr.matches(Vpn::new(v)));
        prop_assert_eq!(cfr.matches(Vpn::new(w)), v == w);
        cfr.invalidate();
        prop_assert!(!cfr.matches(Vpn::new(v)));
    }

    /// Generated programs are structurally valid for arbitrary seeds, and
    /// their instrumented layouts uphold the boundary invariant the
    /// software schemes' correctness rests on.
    #[test]
    fn generator_layout_invariants(seed in 0u64..1000) {
        let mut params = GeneratorParams::small_test();
        params.seed = seed;
        let program = generate(&params);
        prop_assert_eq!(program.validate(), Ok(()));
        let laid = LaidProgram::lay_out(&program, PageGeometry::default_4k(), true);
        prop_assert!(laid.boundary_invariant_holds());
    }

    /// Walker totality: execution never escapes the text and never stops,
    /// for arbitrary seeds.
    #[test]
    fn walker_totality(seed in 0u64..200) {
        let program = generate(&GeneratorParams::small_test());
        let laid = LaidProgram::lay_out(&program, PageGeometry::default_4k(), false);
        let mut w = Walker::new(&laid, seed);
        for _ in 0..2000 {
            let s = w.step();
            prop_assert!(s.next_slot < laid.slots.len());
        }
        prop_assert_eq!(w.steps(), 2000);
    }

    /// Strategy kinds all produce the exact requested commit count and a
    /// physically plausible IPC, for arbitrary small seeds.
    #[test]
    fn simulator_totality(seed in 0u64..20) {
        use cfr_sim::core::{SimConfig, Simulator};
        let program = generate(&GeneratorParams::small_test());
        let mut cfg = SimConfig::default_config();
        cfg.max_commits = 5_000;
        cfg.seed = seed;
        let r = Simulator::run_program(&program, &cfg, StrategyKind::Ia, AddressingMode::ViVt);
        prop_assert_eq!(r.committed, 5_000);
        prop_assert!(r.cpu.ipc() > 0.05 && r.cpu.ipc() <= 4.0);
    }

    /// The compiled-trace backend is a *reference-identical* replacement
    /// for the interpreter: every strategy × addressing-mode cell produces
    /// a field-identical `RunReport` (stats, cycles, and exact energy
    /// bits) under both backends, on arbitrary small random programs.
    #[test]
    fn execution_backends_are_report_identical(seed in 0u64..500) {
        use cfr_sim::core::{compiler, SimConfig, Simulator};
        use cfr_sim::workload::compile_trace;
        let mut params = GeneratorParams::small_test();
        params.seed = seed;
        let program = generate(&params);
        let mut cfg = SimConfig::default_config();
        cfg.max_commits = 1_000;
        cfg.seed = seed ^ 0x5EED;
        for kind in StrategyKind::ALL {
            let laid = compiler::compile_for(&program, cfg.cpu.geometry, kind);
            let trace = compile_trace(&laid);
            for mode in [AddressingMode::PiPt, AddressingMode::ViPt, AddressingMode::ViVt] {
                let interp = Simulator::run_interp(&laid, &cfg, kind, mode);
                let traced = Simulator::run_traced(&trace, &cfg, kind, mode);
                prop_assert_eq!(&interp, &traced, "{:?} under {:?}", kind, mode);
            }
        }
    }

    /// Store codec: TLB and cache stat counters round-trip exactly for
    /// arbitrary values.
    #[test]
    fn stat_records_round_trip(counts in proptest::collection::vec(0u64..u64::MAX / 2, 9..10)) {
        let tlb = TlbStats {
            accesses: counts[0],
            hits: counts[1],
            misses: counts[2],
            invalidations: counts[3],
            protection_faults: counts[8],
        };
        let mut w = RecordWriter::new();
        tlb.to_record(&mut w);
        let record = w.finish();
        let mut r = RecordReader::new(&record);
        prop_assert_eq!(TlbStats::from_record(&mut r).unwrap(), tlb);
        prop_assert!(r.finish().is_ok());

        let cache = CacheStats {
            accesses: counts[4],
            hits: counts[5],
            misses: counts[6],
            writebacks: counts[7],
        };
        let mut w = RecordWriter::new();
        cache.to_record(&mut w);
        let record = w.finish();
        let mut r = RecordReader::new(&record);
        prop_assert_eq!(CacheStats::from_record(&mut r).unwrap(), cache);
        prop_assert!(r.finish().is_ok());
    }

    /// Store codec: energy meters round-trip bit-exactly — event counts
    /// and accumulated picojoule floats — for arbitrary charge patterns.
    #[test]
    fn energy_meter_record_round_trips(
        charges in proptest::collection::vec((0u64..4, (1u64..1_000_000, 1u64..1_000_000)), 0..40)
    ) {
        const COMPONENTS: [&str; 4] = ["itlb_access", "itlb_refill", "cfr_read", "cfr_compare"];
        let mut meter = EnergyMeter::new();
        for (component, (events, millipj)) in charges {
            meter.charge_n(
                COMPONENTS[usize::try_from(component).unwrap()],
                events,
                millipj as f64 / 1000.0,
            );
        }
        let mut w = RecordWriter::new();
        meter.to_record(&mut w);
        let record = w.finish();
        let mut r = RecordReader::new(&record);
        let back = EnergyMeter::from_record(&mut r).unwrap();
        prop_assert!(r.finish().is_ok());
        prop_assert_eq!(back, meter);
    }

    /// Store codec: every representable `RunKey` round-trips through its
    /// record, and its record is a stable content address (equal keys ⇒
    /// equal records, distinct keys ⇒ distinct records).
    #[test]
    fn run_key_record_round_trips(
        profile in 0u64..6,
        commits in 1u64..10_000_000,
        seed in 0u64..u64::MAX / 2,
        strategy in 0u64..6,
        mode in 0u64..3,
        two_level in proptest::bool::ANY,
        entries_pow in 0u32..8,
        il1_override in proptest::bool::ANY,
        page_override in proptest::bool::ANY,
    ) {
        let names: Vec<&'static str> = profiles::all().into_iter().map(|p| p.name).collect();
        let scale = ExperimentScale { max_commits: commits, seed };
        let entries = 1u32 << entries_pow;
        let itlb = if two_level {
            ItlbChoice::TwoLevel(
                TlbOrganization::fully_associative(entries),
                TlbOrganization::fully_associative(entries * 4),
                1,
            )
        } else {
            ItlbChoice::Mono(TlbOrganization::fully_associative(entries))
        };
        let mut key = RunKey::new(
            names[usize::try_from(profile).unwrap()],
            &scale,
            StrategyKind::ALL[usize::try_from(strategy).unwrap()],
            AddressingMode::ALL[usize::try_from(mode).unwrap()],
        )
        .with_itlb(itlb);
        if il1_override {
            key = key.with_il1_bytes(2048);
        }
        if page_override {
            key = key.with_page_bytes(16384);
        }

        let record = Store::key_record(&key);
        let resolve = |name: &str| names.iter().copied().find(|n| *n == name);
        let mut r = RecordReader::new(&record);
        let back = RunKey::from_record(&mut r, resolve).unwrap();
        prop_assert!(r.finish().is_ok());
        prop_assert_eq!(back, key);
        prop_assert_eq!(Store::key_record(&back), record);
    }
}

// ---------------------------------------------------------------------------
// Store-daemon protocol properties: the decoder is total over arbitrary
// bytes (never panics, never mis-frames), and every frame/request/response
// codec round-trips. See `cfr_types::net` and `tests/store_daemon.rs`.
// ---------------------------------------------------------------------------

use cfr_sim::types::net::{
    decode_frame, decode_wire_frame, encode_frame, encode_frame_bin, FrameDecode, Request,
    Response, StoreStats, WireDecode, WirePayload,
};
use cfr_sim::types::GcReport;

/// Builds a printable-ish string (spaces, punctuation, alphanumerics, an
/// occasional multi-byte character) from generated code points.
fn text_from(codes: &[u64]) -> String {
    codes
        .iter()
        .map(|&c| {
            let c = u32::try_from(c % 0x500).unwrap();
            char::from_u32(c)
                .filter(|ch| !ch.is_control())
                .unwrap_or(' ')
        })
        .collect()
}

/// A single-line, non-empty key/value token stream.
fn record_line_from(codes: &[u64]) -> String {
    let line: String = text_from(codes).replace('\n', " ");
    if line.is_empty() {
        "k".to_string()
    } else {
        line
    }
}

proptest! {
    /// Arbitrary byte soup never panics the frame decoder, at any
    /// offset, and whatever it classifies as a frame must re-encode to
    /// the exact bytes it consumed (no mis-framing).
    #[test]
    fn frame_decoder_is_total_over_garbage(bytes in proptest::collection::vec(0u64..256, 0..160)) {
        let bytes: Vec<u8> = bytes.iter().map(|&b| u8::try_from(b).unwrap()).collect();
        for start in 0..=bytes.len() {
            match decode_frame(&bytes[start..]) {
                FrameDecode::Frame { payload, consumed } => {
                    let reencoded = encode_frame(&payload);
                    prop_assert_eq!(reencoded.as_slice(), &bytes[start..start + consumed]);
                }
                FrameDecode::Incomplete | FrameDecode::Invalid => {}
            }
        }
    }

    /// Every payload round-trips through the frame codec, and every
    /// strict prefix of the encoding reads as `Incomplete` — a truncated
    /// frame asks for more bytes, it never yields a wrong payload or an
    /// error.
    #[test]
    fn frame_codec_round_trips_and_prefixes_are_incomplete(
        codes in proptest::collection::vec(0u64..0x3000, 0..120),
        newline_every in 1u64..8,
    ) {
        // Payloads may contain newlines (framing is length-prefixed).
        let mut payload = text_from(&codes);
        let step = usize::try_from(newline_every).unwrap();
        let keep: String = payload
            .chars()
            .enumerate()
            .map(|(i, c)| if i % (step + 1) == step { '\n' } else { c })
            .collect();
        payload = keep;
        let bytes = encode_frame(&payload);
        match decode_frame(&bytes) {
            FrameDecode::Frame { payload: got, consumed } => {
                prop_assert_eq!(&got, &payload);
                prop_assert_eq!(consumed, bytes.len());
            }
            other => prop_assert!(false, "round trip decoded to {other:?}"),
        }
        for cut in 0..bytes.len() {
            prop_assert_eq!(decode_frame(&bytes[..cut]), FrameDecode::Incomplete, "cut {cut}");
        }
    }

    /// Request and response codecs round-trip for generated namespaces,
    /// keys, values, batches, claims, and counter sets — every protocol
    /// frame codec, in **both** wire formats, and the two formats decode
    /// to the same structure (text↔binary equivalence).
    #[test]
    fn request_and_response_codecs_round_trip(
        which in 0u64..10,
        key_codes in proptest::collection::vec(0u64..0x500, 1..40),
        value_codes in proptest::collection::vec(0u64..0x500, 0..60),
        ns_pick in 0u64..4,
        batch in 0usize..5,
        millis in 0u64..1_000_000,
        counters in proptest::collection::vec(0u64..1_000_000, 13..14),
    ) {
        let ns = ["runs", "walks", "programs", "traces"][usize::try_from(ns_pick).unwrap()].to_string();
        let key = record_line_from(&key_codes);
        let value = record_line_from(&value_codes);
        let items: Vec<(String, String)> = (0..batch)
            .map(|i| (ns.clone(), format!("{key} {i}")))
            .collect();
        let put_items: Vec<(String, String, String)> = (0..batch)
            .map(|i| (ns.clone(), format!("{key} {i}"), format!("{value} {i}")))
            .collect();
        let request = match which {
            0 => Request::Get { ns: ns.clone(), key: key.clone() },
            1 => Request::Put { ns: ns.clone(), key: key.clone(), value: value.clone() },
            2 => Request::Put {
                ns: "runs".into(),
                key: "k".into(),
                value: String::new(),
            },
            3 => Request::Stats,
            4 => Request::Gc,
            5 => Request::MGet { items },
            6 => Request::MPut { items: put_items },
            7 => Request::Claim { ns: ns.clone(), key: key.clone(), lease_ms: millis },
            8 => Request::Wait { ns: ns.clone(), key: key.clone(), timeout_ms: millis },
            _ => Request::Shutdown,
        };
        let decoded = Request::decode(&request.encode());
        prop_assert_eq!(decoded.as_ref(), Ok(&request));
        // The binary codec round-trips too, and agrees with text.
        let bin = Request::decode_bin(&request.encode_bin());
        prop_assert_eq!(bin, decoded);

        let mgot: Vec<Option<String>> = (0..batch)
            .map(|i| (i % 2 == 0).then(|| format!("{value} {i}")))
            .collect();
        let response = match which {
            0 => Response::Hit { value },
            1 => Response::Miss,
            2 => Response::Done,
            3 => Response::Stats(StoreStats {
                live_records: counters[0],
                live_bytes: counters[1],
                file_bytes: counters[2],
                runs: counters[3],
                walks: counters[4],
                programs: counters[5],
                traces: counters[6],
                active_connections: counters[7],
                pipeline_hwm: counters[8],
                batched_keys: counters[9],
                max_batch: counters[10],
                claims_granted: counters[11],
                claims_expired: counters[12],
            }),
            4 => Response::Gc(GcReport {
                live_records: counters[0],
                live_bytes: counters[1],
                dead_bytes_dropped: counters[2],
                evicted_age: counters[3],
                evicted_size: counters[4],
                shards_rewritten: u32::try_from(counters[5] % 17).unwrap(),
            }),
            5 => Response::MGot { values: mgot },
            6 => Response::Granted,
            7 => Response::Busy,
            8 => Response::Hello {
                version: u32::try_from(millis % 100).unwrap(),
                features: vec!["batch".into(), "binary".into(), "claim".into()],
            },
            _ => Response::Error {
                message: record_line_from(&value_codes),
            },
        };
        let decoded = Response::decode(&response.encode());
        prop_assert_eq!(decoded.as_ref(), Ok(&response));
        let bin = Response::decode_bin(&response.encode_bin());
        prop_assert_eq!(bin, decoded);
    }

    /// Binary frames round-trip byte payloads exactly, every strict
    /// prefix of a binary frame reads as `Incomplete`, and the dual
    /// decoder never mis-frames garbage: whatever it classifies as a
    /// frame re-encodes to the exact bytes it consumed.
    #[test]
    fn binary_frames_round_trip_and_prefixes_are_incomplete(
        payload in proptest::collection::vec(0u64..256, 0..160),
    ) {
        let payload: Vec<u8> = payload.iter().map(|&b| u8::try_from(b).unwrap()).collect();
        let bytes = encode_frame_bin(&payload);
        match decode_wire_frame(&bytes) {
            WireDecode::Frame { payload: WirePayload::Binary(got), consumed } => {
                prop_assert_eq!(&got, &payload);
                prop_assert_eq!(consumed, bytes.len());
            }
            other => prop_assert!(false, "round trip decoded to {other:?}"),
        }
        for cut in 0..bytes.len() {
            prop_assert_eq!(
                decode_wire_frame(&bytes[..cut]),
                WireDecode::Incomplete,
                "cut {cut}"
            );
        }
        // The dual decoder is total over the same garbage soup, and
        // anything it frames re-encodes to the consumed bytes.
        for start in 0..=payload.len() {
            match decode_wire_frame(&payload[start..]) {
                WireDecode::Frame { payload: got, consumed } => {
                    let reencoded = match &got {
                        WirePayload::Text(text) => encode_frame(text),
                        WirePayload::Binary(bytes) => encode_frame_bin(bytes),
                    };
                    prop_assert_eq!(reencoded.as_slice(), &payload[start..start + consumed]);
                }
                WireDecode::Incomplete | WireDecode::Invalid => {}
            }
        }
    }

    /// Arbitrary byte soup never panics the binary request/response
    /// parsers — they decode or error cleanly, and a decodable payload
    /// re-encodes canonically (same canonical-form guarantee as text).
    #[test]
    fn binary_codecs_are_total_over_garbage(bytes in proptest::collection::vec(0u64..256, 0..120)) {
        let bytes: Vec<u8> = bytes.iter().map(|&b| u8::try_from(b).unwrap()).collect();
        if let Ok(request) = Request::decode_bin(&bytes) {
            prop_assert_eq!(Request::decode_bin(&request.encode_bin()), Ok(request));
        }
        if let Ok(response) = Response::decode_bin(&bytes) {
            prop_assert_eq!(Response::decode_bin(&response.encode_bin()), Ok(response));
        }
    }

    /// Arbitrary text fed to the request/response parsers never panics —
    /// it decodes or errors cleanly (the server's "clean error reply"
    /// path), and a decodable request re-encodes canonically.
    #[test]
    fn request_parser_is_total_over_garbage(codes in proptest::collection::vec(0u64..0x3000, 0..80)) {
        let mut payload = text_from(&codes);
        // Reintroduce structure sometimes so the parser's deeper
        // branches get exercised, not just the verb dispatch.
        if payload.len() > 6 {
            payload = format!("get {payload}");
        }
        if let Ok(request) = Request::decode(&payload) {
            let again = Request::decode(&request.encode());
            prop_assert_eq!(again, Ok(request));
        }
        if let Ok(response) = Response::decode(&payload) {
            let again = Response::decode(&response.encode());
            prop_assert_eq!(again, Ok(response));
        }
    }
}
