//! # cfr-sim
//!
//! A reproduction of *"Generating Physical Addresses Directly for Saving
//! Instruction TLB Energy"* (Kadayif et al., MICRO 2002).
//!
//! The paper keeps the current instruction page's translation in a single
//! **Current Frame Register (CFR)** and avoids instruction-TLB lookups until
//! execution leaves that page. This workspace implements the whole system
//! from scratch:
//!
//! - [`types`] — address/page newtypes shared by every crate,
//! - [`energy`] — an analytical CACTI-like energy model,
//! - [`mem`] — caches, TLBs (mono + two-level), page table, DRAM,
//! - [`workload`] — a synthetic SPEC2000-like program generator,
//! - [`cpu`] — a cycle-level out-of-order core (fetch queue, RUU, LSQ,
//!   bimodal predictor, BTB),
//! - [`core`] — the paper's contribution: the CFR, the Base/OPT/HoA/SoCA/
//!   SoLA/IA fetch-translation strategies, the compiler passes, and the
//!   experiment harness.
//!
//! # Quickstart
//!
//! ```
//! use cfr_sim::core::{Simulator, SimConfig, StrategyKind};
//! use cfr_sim::mem::AddressingMode;
//! use cfr_sim::workload::profiles;
//!
//! let profile = profiles::mesa();
//! let mut cfg = SimConfig::default_config();
//! cfg.max_commits = 50_000; // keep the doctest fast
//! let report = Simulator::run_profile(&profile, &cfg, StrategyKind::Ia, AddressingMode::ViPt);
//! assert!(report.itlb.accesses < report.committed);
//! ```
//!
//! The per-table/per-figure reproduction binaries live in the `cfr-bench`
//! crate; see `DESIGN.md` and `EXPERIMENTS.md` at the repository root.

pub use cfr_core as core;
pub use cfr_cpu as cpu;
pub use cfr_energy as energy;
pub use cfr_mem as mem;
pub use cfr_types as types;
pub use cfr_workload as workload;
