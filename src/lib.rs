//! # cfr-sim
//!
//! A reproduction of *"Generating Physical Addresses Directly for Saving
//! Instruction TLB Energy"* (Kadayif et al., MICRO 2002).
//!
//! The paper keeps the current instruction page's translation in a single
//! **Current Frame Register (CFR)** and avoids instruction-TLB lookups until
//! execution leaves that page. This workspace implements the whole system
//! from scratch:
//!
//! - [`types`] — address/page newtypes shared by every crate,
//! - [`energy`] — an analytical CACTI-like energy model,
//! - [`mem`] — caches, TLBs (mono + two-level), page table, DRAM,
//! - [`workload`] — a synthetic SPEC2000-like program generator,
//! - [`cpu`] — a cycle-level out-of-order core (fetch queue, RUU, LSQ,
//!   bimodal predictor, BTB),
//! - [`core`] — the paper's contribution: the CFR, the Base/OPT/HoA/SoCA/
//!   SoLA/IA fetch-translation strategies, the compiler passes, and the
//!   experiment harness.
//!
//! # Quickstart
//!
//! Experiments run through the parallel, deduplicating engine: declare
//! the runs you need as `RunKey`s and the engine simulates each unique
//! key exactly once, on all cores.
//!
//! ```
//! use cfr_sim::core::{Engine, ExperimentScale, RunKey, StrategyKind};
//! use cfr_sim::mem::AddressingMode;
//!
//! let engine = Engine::new();
//! let scale = ExperimentScale { max_commits: 50_000, seed: 0x5EED }; // keep the doctest fast
//! let key = RunKey::new("177.mesa", &scale, StrategyKind::Ia, AddressingMode::ViPt);
//! let report = engine.run(key);
//! assert!(report.itlb.accesses < report.committed);
//! ```
//!
//! The per-table/per-figure reproduction binaries live in the `cfr-bench`
//! crate; see `DESIGN.md` and `EXPERIMENTS.md` at the repository root.

pub use cfr_core as core;
pub use cfr_cpu as cpu;
pub use cfr_energy as energy;
pub use cfr_mem as mem;
pub use cfr_types as types;
pub use cfr_workload as workload;
