//! Offline stand-in for `criterion` (see `vendor/README.md`): the macro
//! and API subset the workspace's microbenchmarks use — `criterion_group!`
//! / `criterion_main!`, [`Criterion::bench_function`], benchmark groups
//! with [`Throughput`] / sample-size settings, and [`Bencher::iter`].
//!
//! Semantics are honest but simple: each benchmark is warmed up briefly,
//! then timed over enough iterations to pass a fixed measurement window,
//! and the mean time per iteration (plus throughput, when declared) is
//! printed. There are no statistics, plots, or saved baselines — the shim
//! exists so `cargo bench` compiles and gives usable first-order numbers
//! from a clean offline checkout. Swapping in the real crate is the usual
//! one-line edit in the root `Cargo.toml`; bench sources are compatible
//! with upstream's API.

use std::time::{Duration, Instant};

/// Minimum measured wall time per benchmark.
const MEASURE_WINDOW: Duration = Duration::from_millis(300);
/// Warm-up time per benchmark.
const WARMUP_WINDOW: Duration = Duration::from_millis(100);

/// Declared throughput of one benchmark iteration.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration (e.g. simulated instructions).
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: `function_id/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `function_id/parameter`.
    pub fn new(function_id: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{function_id}/{parameter}"),
        }
    }
}

/// The per-benchmark timing driver.
pub struct Bencher {
    /// Mean seconds per iteration, filled by [`Bencher::iter`].
    mean_secs: f64,
}

impl Bencher {
    /// Times `routine`: warm-up, then as many iterations as the
    /// measurement window needs.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let warm_until = Instant::now() + WARMUP_WINDOW;
        while Instant::now() < warm_until {
            std::hint::black_box(routine());
        }
        let mut iters: u64 = 0;
        let start = Instant::now();
        loop {
            std::hint::black_box(routine());
            iters += 1;
            if start.elapsed() >= MEASURE_WINDOW {
                break;
            }
        }
        self.mean_secs = start.elapsed().as_secs_f64() / iters as f64;
    }
}

fn human_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

fn report(name: &str, mean_secs: f64, throughput: Option<Throughput>) {
    let rate = match throughput {
        Some(Throughput::Elements(n)) if mean_secs > 0.0 => {
            format!("  {:.0} elem/s", n as f64 / mean_secs)
        }
        Some(Throughput::Bytes(n)) if mean_secs > 0.0 => {
            format!("  {:.0} B/s", n as f64 / mean_secs)
        }
        _ => String::new(),
    };
    println!("{name:<40} time: {}{rate}", human_time(mean_secs));
}

/// A group of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'c> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Accepted for upstream compatibility; the shim sizes runs by wall
    /// time, not sample count.
    pub fn sample_size(&mut self, _n: usize) {}

    /// Runs one parameterized benchmark of the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { mean_secs: 0.0 };
        f(&mut b, input);
        report(
            &format!("{}/{}", self.name, id.id),
            b.mean_secs,
            self.throughput,
        );
    }

    /// Ends the group (no-op beyond upstream compatibility).
    pub fn finish(self) {}
}

/// The benchmark harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { mean_secs: 0.0 };
        f(&mut b);
        report(name, b.mean_secs, None);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }
}

/// Declares a group of benchmark functions, as upstream.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main`, as upstream.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags like `--bench`; the shim
            // runs everything and ignores filters.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher { mean_secs: 0.0 };
        b.iter(|| std::hint::black_box(3u64).wrapping_mul(7));
        assert!(b.mean_secs > 0.0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("vipt", "Base").id, "vipt/Base");
    }
}
