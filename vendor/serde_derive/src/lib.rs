//! No-op `Serialize`/`Deserialize` derives for the offline `serde` stub
//! (see `vendor/README.md`). The derives accept `#[serde(...)]` helper
//! attributes so sources stay compatible with the real serde_derive.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
