//! Offline stand-in for `rayon` (see `vendor/README.md`).
//!
//! Implements the API subset the experiment engine uses — `prelude`,
//! `par_iter()` / `into_par_iter()`, `ParallelIterator::{map, for_each,
//! collect}`, and [`join`] — on top of `std::thread::scope`. Work is
//! distributed dynamically through an atomic index (cheap work stealing),
//! and results are reassembled in input order, so a parallel map is
//! **bit-identical** to its serial equivalent whenever the mapped
//! function is deterministic.
//!
//! Semantics differences from real rayon (acceptable for our usage and
//! documented so nobody is surprised):
//! - only the *outermost* adapter of a chain runs in parallel; inner
//!   stages of `map(..).map(..)` execute serially during the drive, and
//! - there is no global thread pool: each drive spawns scoped threads
//!   (one per available core, capped by item count). The engine's runs
//!   are seconds-long simulations, so spawn cost is noise.

use std::panic;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

/// Worker count installed by [`ThreadPoolBuilder::build_global`];
/// 0 means "not configured".
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

/// The number of worker threads a parallel drive will use (before capping
/// by item count). Like real rayon, a [`ThreadPoolBuilder::build_global`]
/// setting wins, then the `RAYON_NUM_THREADS` environment variable (read
/// only — processes inherit it at spawn; nothing mutates it at runtime),
/// then the host's available parallelism.
#[must_use]
pub fn current_num_threads() -> usize {
    let configured = GLOBAL_THREADS.load(Ordering::Relaxed);
    if configured > 0 {
        return configured;
    }
    if let Some(n) = std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        if n > 0 {
            return n;
        }
    }
    thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Rayon-compatible global worker-count configuration. Only
/// `num_threads` + `build_global` are supported; unlike real rayon,
/// calling `build_global` again simply replaces the setting.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// A builder with no explicit worker count.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker count (0 restores the default resolution).
    #[must_use]
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Installs the setting process-wide.
    ///
    /// # Errors
    ///
    /// Never fails in the stub; the `Result` mirrors real rayon's
    /// signature so call sites stay source-compatible.
    pub fn build_global(self) -> Result<(), BuildGlobalError> {
        GLOBAL_THREADS.store(self.num_threads, Ordering::Relaxed);
        Ok(())
    }
}

/// Stand-in for rayon's `ThreadPoolBuildError`.
#[derive(Debug)]
pub struct BuildGlobalError;

/// Runs both closures, potentially in parallel, and returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        let rb = match hb.join() {
            Ok(rb) => rb,
            Err(payload) => panic::resume_unwind(payload),
        };
        (ra, rb)
    })
}

/// Order-preserving parallel map: the engine room of the stub.
fn par_map<T, R, F>(items: Vec<T>, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let threads = current_num_threads().min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    // Each slot is taken exactly once (the atomic index hands every i to
    // one worker), so the per-item mutexes are uncontended.
    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let next = AtomicUsize::new(0);
    let mut pairs: Vec<(usize, R)> = thread::scope(|s| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let item = work[i]
                            .lock()
                            .expect("work slot poisoned")
                            .take()
                            .expect("each work index is claimed once");
                        local.push((i, f(item)));
                    }
                    local
                })
            })
            .collect();
        let mut pairs = Vec::with_capacity(n);
        for w in workers {
            match w.join() {
                Ok(local) => pairs.extend(local),
                Err(payload) => panic::resume_unwind(payload),
            }
        }
        pairs
    });
    pairs.sort_unstable_by_key(|&(i, _)| i);
    pairs.into_iter().map(|(_, r)| r).collect()
}

/// The rayon-compatible prelude: `use rayon::prelude::*;`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

/// A parallel iterator: drives its items to a `Vec` in input order.
pub trait ParallelIterator: Sized {
    /// The element type.
    type Item: Send;

    /// Consumes the iterator, producing all items in input order.
    fn drive(self) -> Vec<Self::Item>;

    /// Maps each item through `f`; the map is executed in parallel when
    /// this adapter is the outermost one driven.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync,
    {
        Map { base: self, f }
    }

    /// Calls `f` on every item in parallel.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        let _ = self.map(f).drive();
    }

    /// Collects all items, preserving input order.
    fn collect<C>(self) -> C
    where
        C: FromIterator<Self::Item>,
    {
        self.drive().into_iter().collect()
    }
}

/// Base parallel iterator over an owned sequence.
pub struct IterBase<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for IterBase<T> {
    type Item = T;

    fn drive(self) -> Vec<T> {
        self.items
    }
}

/// The `map` adapter; parallel when driven directly.
pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I, R, F> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    R: Send,
    F: Fn(I::Item) -> R + Sync,
{
    type Item = R;

    fn drive(self) -> Vec<R> {
        par_map(self.base.drive(), &self.f)
    }
}

/// Conversion into a parallel iterator (rayon's `into_par_iter`).
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;

    /// Converts `self` into a parallel iterator over owned items.
    fn into_par_iter(self) -> IterBase<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> IterBase<T> {
        IterBase { items: self }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Item = &'a T;

    fn into_par_iter(self) -> IterBase<&'a T> {
        IterBase {
            items: self.iter().collect(),
        }
    }
}

/// By-reference conversion (rayon's `par_iter`).
pub trait IntoParallelRefIterator<'a> {
    /// The element type.
    type Item: Send;

    /// A parallel iterator over `&self`'s items.
    fn par_iter(&'a self) -> IterBase<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;

    fn par_iter(&'a self) -> IterBase<&'a T> {
        self.as_slice().into_par_iter()
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;

    fn par_iter(&'a self) -> IterBase<&'a T> {
        self.into_par_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = v.par_iter().map(|&x| x * 2).collect();
        let expected: Vec<u64> = (0..1000).map(|x| x * 2).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn into_par_iter_owned() {
        let v = vec![String::from("a"), String::from("b")];
        let out: Vec<usize> = v.into_par_iter().map(|s| s.len()).collect();
        assert_eq!(out, vec![1, 1]);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!((a, b), (2, "two"));
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
        let one: Vec<u32> = vec![7].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(one, vec![8]);
    }

    #[test]
    fn for_each_visits_all() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let sum = AtomicU64::new(0);
        let v: Vec<u64> = (1..=100).collect();
        v.par_iter().for_each(|&x| {
            sum.fetch_add(x, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 5050);
    }
}
