//! Offline stand-in for `serde` (see `vendor/README.md`): marker traits
//! plus the no-op derive macros, under the real crate's import paths.
//! The workspace only derives these traits as forward-looking markers;
//! nothing serializes at runtime.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
