//! Offline stand-in for `proptest` (see `vendor/README.md`): a seeded
//! generator plus the macro subset the workspace's property-based suite
//! uses — `proptest!`, `prop_assert!`, `prop_assert_eq!`, integer-range /
//! tuple / bool strategies, and `collection::{vec, hash_set}`.
//!
//! Semantics match upstream where it matters for these tests:
//!
//! - each `proptest!` test runs `PROPTEST_CASES` cases (default 64) with
//!   inputs drawn from its strategies,
//! - generation is **deterministic**: the RNG is seeded from the test's
//!   path and the case index, so failures reproduce exactly on re-run,
//! - `prop_assert*` failures report the failing expression **and the
//!   case's generated input values** (every strategy value's `Debug`
//!   rendering), then **greedily shrink** the failing input before
//!   aborting the case: integers halve toward the range start and
//!   decrement, vectors try prefix truncation, element removal, and
//!   element-wise shrinking, sets drop elements, booleans flip to
//!   `false` — the panic message carries both the original and the
//!   minimized inputs. Shrinking is budgeted ([`shrink_failure`]) and
//!   re-runs are wrapped in `catch_unwind`, so a candidate that panics
//!   outright (not just `prop_assert`-fails) still counts as failing.
//!   This requires generated values to be `Debug + Clone`, which
//!   everything the built-in strategies produce is.
//!
//! Swapping in the real crate is the usual one-line edit in the root
//! `Cargo.toml`; no test-source change is required for this subset.

use core::ops::Range;

/// Number of cases per property (`PROPTEST_CASES` overrides).
#[must_use]
pub fn cases() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// A small, fast, seedable RNG (splitmix64) — deterministic per
/// (test path, case index).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// An RNG for one test case, seeded from the test's identity.
    #[must_use]
    pub fn for_case(test_path: &str, case: u64) -> Self {
        // FNV-1a over the path, mixed with the case index.
        let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in test_path.bytes() {
            seed ^= u64::from(byte);
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self {
            state: seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "empty range");
        // Modulo bias is irrelevant at test-generation quality.
        self.next_u64() % bound
    }
}

/// A value generator. The upstream trait is much richer (`prop_map`,
/// rejection, …); the subset here is exactly what the suite consumes:
/// drawing values and proposing shrunk candidates for a failing one.
pub trait Strategy {
    /// The generated value type.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
    /// Proposes strictly "simpler" candidates derived from a failing
    /// `value`, most aggressive first, all within the strategy's domain.
    /// The default proposes nothing (no shrinking).
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                self.start
                    + <$t>::try_from(rng.below((self.end - self.start) as u64))
                        .expect("in range")
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                let v = *value;
                let mut out = Vec::new();
                if v > self.start {
                    // Jump to the floor, halve the distance, decrement:
                    // the greedy loop binary-searches to the smallest
                    // failing value and the decrement proves minimality.
                    out.push(self.start);
                    let mid = self.start + (v - self.start) / 2;
                    if mid != self.start && mid != v {
                        out.push(mid);
                    }
                    if v - 1 != self.start {
                        out.push(v - 1);
                    }
                }
                out
            }
        }
    )+};
}

impl_range_strategy!(u64, u32, usize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+);)+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+)
        where
            $($s::Value: Clone,)+
        {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = cand;
                        out.push(next);
                    }
                )+
                out
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6);
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8);
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9);
}

/// `Debug`-renders each component of an input tuple separately, so the
/// `proptest!` macro can label a shrunk tuple's parts with the property's
/// parameter names.
pub trait DebugParts {
    /// One `Debug` rendering per tuple component, in order.
    fn debug_parts(&self) -> Vec<String>;
}

macro_rules! impl_debug_parts {
    ($(($($t:ident . $idx:tt),+);)+) => {$(
        impl<$($t: core::fmt::Debug),+> DebugParts for ($($t,)+) {
            fn debug_parts(&self) -> Vec<String> {
                vec![$(format!("{:?}", &self.$idx)),+]
            }
        }
    )+};
}

impl_debug_parts! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6);
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8);
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9);
}

/// Pins a property-body closure's argument type to the value type of the
/// strategy tuple it will be fed from — `proptest!` uses this so the
/// closure's destructuring patterns type-check at the definition site
/// (closure parameter types don't flow backwards from later calls).
pub fn bind_check<S, F>(_strategy: &S, check: F) -> F
where
    S: Strategy,
    F: Fn(S::Value) -> Result<(), String>,
{
    check
}

/// Total candidate re-evaluations one failing case may spend shrinking.
const SHRINK_EVALS: usize = 2000;

/// Greedy minimization: starting from a known-failing input, repeatedly
/// adopt the first shrink candidate that still fails, until no candidate
/// fails or the [`SHRINK_EVALS`] budget runs out. Returns the most-shrunk
/// failing input (possibly the original).
pub fn shrink_failure<S: Strategy>(
    strategy: &S,
    failing: S::Value,
    mut still_fails: impl FnMut(&S::Value) -> bool,
) -> S::Value
where
    S::Value: Clone,
{
    let mut current = failing;
    let mut evals = 0usize;
    'outer: while evals < SHRINK_EVALS {
        for cand in strategy.shrink(&current) {
            if evals >= SHRINK_EVALS {
                break 'outer;
            }
            evals += 1;
            if still_fails(&cand) {
                current = cand;
                continue 'outer;
            }
        }
        break;
    }
    current
}

/// Boolean strategies (`proptest::bool::ANY`).
pub mod bool {
    /// Uniform `bool`.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// The uniform boolean strategy.
    pub const ANY: Any = Any;

    impl super::Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut super::TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
        fn shrink(&self, value: &bool) -> Vec<bool> {
            // `false` is the minimal boolean, as upstream.
            if *value {
                vec![false]
            } else {
                Vec::new()
            }
        }
    }
}

/// Collection strategies (`proptest::collection::{vec, hash_set}`).
pub mod collection {
    use core::hash::Hash;
    use core::ops::Range;

    use super::{Strategy, TestRng};

    /// A `Vec` of `element` values with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// A `HashSet` of `element` values with a size drawn from `size`
    /// (best-effort: bounded retries when the element domain is small).
    pub fn hash_set<S>(element: S, size: Range<usize>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        HashSetStrategy { element, size }
    }

    /// See [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
        fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
            let min = self.size.start;
            let mut out = Vec::new();
            if value.len() > min {
                // Shorter first: minimal-length prefix, half-length
                // prefix, then dropping each element individually.
                out.push(value[..min].to_vec());
                let half = min + (value.len() - min) / 2;
                if half != min && half != value.len() {
                    out.push(value[..half].to_vec());
                }
                for i in 0..value.len() {
                    let mut next = value.clone();
                    next.remove(i);
                    out.push(next);
                }
            }
            // Element-wise, once the length cannot shrink further.
            for (i, elem) in value.iter().enumerate() {
                for cand in self.element.shrink(elem) {
                    let mut next = value.clone();
                    next[i] = cand;
                    out.push(next);
                }
            }
            out
        }
    }

    /// See [`hash_set`].
    #[derive(Clone, Debug)]
    pub struct HashSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq + Clone,
    {
        type Value = std::collections::HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.generate(rng);
            let mut set = std::collections::HashSet::new();
            let mut attempts = 0usize;
            while set.len() < target && attempts < target.saturating_mul(10) + 16 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
        fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
            let mut out = Vec::new();
            if value.len() > self.size.start {
                for e in value {
                    let mut next = value.clone();
                    next.remove(e);
                    out.push(next);
                }
            }
            out
        }
    }
}

/// Everything a property-based test file needs in scope.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest, Strategy};
}

/// Defines deterministic property tests.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     // In a test module this would carry `#[test]`, as upstream.
///     fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// # fn main() { addition_commutes(); }
/// ```
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases = $crate::cases();
                for case in 0..cases {
                    let mut rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    // Record every generated input's Debug rendering up
                    // front, so a failing case reports the actual values
                    // (not just the reproducible case index). The tuple
                    // elements evaluate left to right, preserving the
                    // per-strategy RNG draw order.
                    let __proptest_strategies = ( $( ($strategy), )+ );
                    let mut __proptest_inputs = ::std::string::String::new();
                    let __proptest_values = ( $( {
                        let __proptest_value =
                            $crate::Strategy::generate(&($strategy), &mut rng);
                        if !__proptest_inputs.is_empty() {
                            __proptest_inputs.push_str(", ");
                        }
                        __proptest_inputs.push_str(&::std::format!(
                            "{} = {:?}",
                            stringify!($pat),
                            &__proptest_value,
                        ));
                        __proptest_value
                    }, )+ );
                    // The property body as a re-runnable check over a
                    // candidate input tuple (cloned per run) — the shrink
                    // loop replays it against smaller candidates.
                    let __proptest_check =
                        $crate::bind_check(&__proptest_strategies, |($($pat,)+)| {
                            let __proptest_result: ::core::result::Result<
                                (),
                                ::std::string::String,
                            > = {
                                $body
                                ::core::result::Result::Ok(())
                            };
                            __proptest_result
                        });
                    let outcome =
                        __proptest_check(::core::clone::Clone::clone(&__proptest_values));
                    if let ::core::result::Result::Err(message) = outcome {
                        // Greedily minimize before reporting. Candidate
                        // re-runs are unwind-caught: a candidate that
                        // panics (rather than `prop_assert`-failing)
                        // still counts as a failing input.
                        let __proptest_minimal = $crate::shrink_failure(
                            &__proptest_strategies,
                            __proptest_values,
                            |__proptest_candidate| {
                                ::std::panic::catch_unwind(
                                    ::std::panic::AssertUnwindSafe(|| {
                                        __proptest_check(::core::clone::Clone::clone(
                                            __proptest_candidate,
                                        ))
                                    }),
                                )
                                .map_or(true, |r| r.is_err())
                            },
                        );
                        let __proptest_names = [ $( stringify!($pat) ),+ ];
                        let mut __proptest_shrunk = ::std::string::String::new();
                        for (name, part) in __proptest_names
                            .iter()
                            .zip($crate::DebugParts::debug_parts(&__proptest_minimal))
                        {
                            if !__proptest_shrunk.is_empty() {
                                __proptest_shrunk.push_str(", ");
                            }
                            __proptest_shrunk.push_str(name);
                            __proptest_shrunk.push_str(" = ");
                            __proptest_shrunk.push_str(&part);
                        }
                        panic!(
                            "property {} failed at case {case}/{cases} \
                             with inputs [{}], shrunk to minimal inputs \
                             [{}]: {message}",
                            stringify!($name),
                            __proptest_inputs,
                            __proptest_shrunk,
                        );
                    }
                }
            }
        )+
    };
}

/// Asserts a condition inside `proptest!`, failing the case (not the
/// whole process) with the stringified expression.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err(::std::format!(
                "prop_assert failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(::std::format!(
                "prop_assert failed: {}: {}",
                stringify!($cond),
                ::std::format!($($fmt)+)
            ));
        }
    };
}

/// Asserts equality inside `proptest!` with `Debug` output of both sides.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::core::result::Result::Err(::std::format!(
                "prop_assert_eq failed: {left:?} != {right:?}"
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::core::result::Result::Err(::std::format!(
                "prop_assert_eq failed: {left:?} != {right:?}: {}",
                ::std::format!($($fmt)+)
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_case() {
        let mut a = TestRng::for_case("x::y", 3);
        let mut b = TestRng::for_case("x::y", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("x::y", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case("bounds", 0);
        for _ in 0..1000 {
            let v = (5u64..17).generate(&mut rng);
            assert!((5..17).contains(&v));
            let w = (2u32..3).generate(&mut rng);
            assert_eq!(w, 2);
        }
    }

    #[test]
    fn collections_respect_sizes() {
        let mut rng = TestRng::for_case("sizes", 1);
        for _ in 0..100 {
            let v = collection::vec(0u64..10, 1..8).generate(&mut rng);
            assert!((1..8).contains(&v.len()));
            let s = collection::hash_set(0u64..1_000_000, 1..8).generate(&mut rng);
            assert!(!s.is_empty() && s.len() < 8);
        }
    }

    #[test]
    fn integer_shrink_candidates_move_toward_the_start() {
        // At the floor: nothing to propose.
        assert!((5u64..100).shrink(&5).is_empty());
        // Above it: floor first, then the midpoint, then the decrement.
        assert_eq!((5u64..100).shrink(&50), vec![5, 27, 49]);
        // Adjacent to the floor: just the floor (no duplicates).
        assert_eq!((5u64..100).shrink(&6), vec![5]);
    }

    #[test]
    fn bool_and_tuple_shrink_candidates() {
        assert_eq!(bool::ANY.shrink(&true), vec![false]);
        assert!(bool::ANY.shrink(&false).is_empty());
        // Tuples shrink one component at a time, earlier components
        // first.
        let cands = (0u64..10, bool::ANY).shrink(&(4, true));
        assert_eq!(cands, vec![(0, true), (2, true), (3, true), (4, false)]);
    }

    #[test]
    fn vec_shrink_prefers_shorter_vectors() {
        let strat = collection::vec(0u64..100, 1..8);
        let cands = strat.shrink(&vec![3, 87]);
        // Minimal-length prefix first, then per-index removals, then
        // element-wise shrinks.
        assert_eq!(cands[0], vec![3]);
        assert!(cands.contains(&vec![87]));
        assert!(cands.contains(&vec![3, 43]));
        // At the minimal length only element-wise candidates remain.
        assert!(strat.shrink(&vec![5]).iter().all(|c| c.len() == 1));
    }

    proptest! {
        /// The macro itself: patterns, multiple strategies, trailing comma.
        #[test]
        fn macro_smoke(a in 0u64..100, flag in crate::bool::ANY,) {
            prop_assert!(a < 100, "a = {a}");
            prop_assert_eq!(u64::from(flag) + u64::from(!flag), 1);
        }
    }

    proptest! {
        // Deliberately failing property (no #[test]: only invoked via
        // catch_unwind below). The 5..6 range pins the generated value.
        fn always_fails(doomed in 5u64..6, friend in 0u64..1) {
            let _ = friend;
            prop_assert!(doomed != 5, "the failing condition");
        }
    }

    proptest! {
        // Deliberately failing property for the shrinking self-test: the
        // minimal failing input is exactly 10.
        fn fails_from_ten_up(v in 0u64..1000) {
            prop_assert!(v < 10, "too big");
        }
    }

    proptest! {
        // Deliberately failing property over a vector: any element ≥ 5
        // fails, so the minimal failing input is the one-element [5].
        fn fails_with_big_element(v in crate::collection::vec(0u64..100, 0..8)) {
            prop_assert!(v.iter().all(|&x| x < 5), "contains a big element");
        }
    }

    fn failure_message_of(f: fn()) -> String {
        let panic = std::panic::catch_unwind(f).expect_err("must fail");
        panic
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| panic.downcast_ref::<&str>().map(ToString::to_string))
            .expect("panic payload is a string")
    }

    #[test]
    fn failure_message_names_the_generated_values() {
        let message = failure_message_of(always_fails);
        assert!(
            message.contains("doomed = 5") && message.contains("friend = 0"),
            "failure must print every generated value, got: {message}"
        );
        assert!(
            message.contains("case 0/"),
            "case index stays in the message: {message}"
        );
    }

    #[test]
    fn failing_integer_shrinks_to_the_boundary() {
        let message = failure_message_of(fails_from_ten_up);
        assert!(
            message.contains("shrunk to minimal inputs [v = 10]"),
            "greedy shrinking must reach the smallest failing value, got: {message}"
        );
    }

    #[test]
    fn failing_vector_shrinks_to_one_minimal_element() {
        let message = failure_message_of(fails_with_big_element);
        assert!(
            message.contains("shrunk to minimal inputs [v = [5]]"),
            "greedy shrinking must reach the minimal vector, got: {message}"
        );
    }
}
