//! Offline stand-in for `proptest` (see `vendor/README.md`): a seeded
//! generator plus the macro subset the workspace's property-based suite
//! uses — `proptest!`, `prop_assert!`, `prop_assert_eq!`, integer-range /
//! tuple / bool strategies, and `collection::{vec, hash_set}`.
//!
//! Semantics match upstream where it matters for these tests:
//!
//! - each `proptest!` test runs `PROPTEST_CASES` cases (default 64) with
//!   inputs drawn from its strategies,
//! - generation is **deterministic**: the RNG is seeded from the test's
//!   path and the case index, so failures reproduce exactly on re-run,
//! - `prop_assert*` failures report the failing expression **and the
//!   case's generated input values** (every strategy value's `Debug`
//!   rendering) and abort the case. Upstream's shrinking is not
//!   implemented — the printed inputs plus the deterministic case index
//!   serve as the reproducer instead. This requires generated values to
//!   be `Debug`, which everything the built-in strategies produce is.
//!
//! Swapping in the real crate is the usual one-line edit in the root
//! `Cargo.toml`; no test-source change is required for this subset.

use core::ops::Range;

/// Number of cases per property (`PROPTEST_CASES` overrides).
#[must_use]
pub fn cases() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// A small, fast, seedable RNG (splitmix64) — deterministic per
/// (test path, case index).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// An RNG for one test case, seeded from the test's identity.
    #[must_use]
    pub fn for_case(test_path: &str, case: u64) -> Self {
        // FNV-1a over the path, mixed with the case index.
        let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in test_path.bytes() {
            seed ^= u64::from(byte);
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self {
            state: seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "empty range");
        // Modulo bias is irrelevant at test-generation quality.
        self.next_u64() % bound
    }
}

/// A value generator. The upstream trait is much richer (shrinking,
/// `prop_map`, …); the subset here is exactly what the suite consumes.
pub trait Strategy {
    /// The generated value type.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for Range<u64> {
    type Value = u64;
    fn generate(&self, rng: &mut TestRng) -> u64 {
        self.start + rng.below(self.end - self.start)
    }
}

impl Strategy for Range<u32> {
    type Value = u32;
    fn generate(&self, rng: &mut TestRng) -> u32 {
        self.start + u32::try_from(rng.below(u64::from(self.end - self.start))).expect("in range")
    }
}

impl Strategy for Range<usize> {
    type Value = usize;
    fn generate(&self, rng: &mut TestRng) -> usize {
        self.start + usize::try_from(rng.below((self.end - self.start) as u64)).expect("in range")
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

/// Boolean strategies (`proptest::bool::ANY`).
pub mod bool {
    /// Uniform `bool`.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// The uniform boolean strategy.
    pub const ANY: Any = Any;

    impl super::Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut super::TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Collection strategies (`proptest::collection::{vec, hash_set}`).
pub mod collection {
    use core::hash::Hash;
    use core::ops::Range;

    use super::{Strategy, TestRng};

    /// A `Vec` of `element` values with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// A `HashSet` of `element` values with a size drawn from `size`
    /// (best-effort: bounded retries when the element domain is small).
    pub fn hash_set<S>(element: S, size: Range<usize>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        HashSetStrategy { element, size }
    }

    /// See [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// See [`hash_set`].
    #[derive(Clone, Debug)]
    pub struct HashSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        type Value = std::collections::HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.generate(rng);
            let mut set = std::collections::HashSet::new();
            let mut attempts = 0usize;
            while set.len() < target && attempts < target.saturating_mul(10) + 16 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

/// Everything a property-based test file needs in scope.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest, Strategy};
}

/// Defines deterministic property tests.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     // In a test module this would carry `#[test]`, as upstream.
///     fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// # fn main() { addition_commutes(); }
/// ```
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases = $crate::cases();
                for case in 0..cases {
                    let mut rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    // Record every generated input's Debug rendering up
                    // front, so a failing case reports the actual values
                    // (not just the reproducible case index). Upstream
                    // shrinks instead; here readable inputs are the
                    // reproducer.
                    let mut __proptest_inputs = ::std::string::String::new();
                    $(
                        let __proptest_value = $crate::Strategy::generate(&($strategy), &mut rng);
                        if !__proptest_inputs.is_empty() {
                            __proptest_inputs.push_str(", ");
                        }
                        __proptest_inputs.push_str(&::std::format!(
                            "{} = {:?}",
                            stringify!($pat),
                            &__proptest_value,
                        ));
                        let $pat = __proptest_value;
                    )+
                    let outcome: ::core::result::Result<(), ::std::string::String> = (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(message) = outcome {
                        panic!(
                            "property {} failed at case {case}/{cases} \
                             with inputs [{}]: {message}",
                            stringify!($name),
                            __proptest_inputs,
                        );
                    }
                }
            }
        )+
    };
}

/// Asserts a condition inside `proptest!`, failing the case (not the
/// whole process) with the stringified expression.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err(::std::format!(
                "prop_assert failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(::std::format!(
                "prop_assert failed: {}: {}",
                stringify!($cond),
                ::std::format!($($fmt)+)
            ));
        }
    };
}

/// Asserts equality inside `proptest!` with `Debug` output of both sides.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::core::result::Result::Err(::std::format!(
                "prop_assert_eq failed: {left:?} != {right:?}"
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::core::result::Result::Err(::std::format!(
                "prop_assert_eq failed: {left:?} != {right:?}: {}",
                ::std::format!($($fmt)+)
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_case() {
        let mut a = TestRng::for_case("x::y", 3);
        let mut b = TestRng::for_case("x::y", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("x::y", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case("bounds", 0);
        for _ in 0..1000 {
            let v = (5u64..17).generate(&mut rng);
            assert!((5..17).contains(&v));
            let w = (2u32..3).generate(&mut rng);
            assert_eq!(w, 2);
        }
    }

    #[test]
    fn collections_respect_sizes() {
        let mut rng = TestRng::for_case("sizes", 1);
        for _ in 0..100 {
            let v = collection::vec(0u64..10, 1..8).generate(&mut rng);
            assert!((1..8).contains(&v.len()));
            let s = collection::hash_set(0u64..1_000_000, 1..8).generate(&mut rng);
            assert!(!s.is_empty() && s.len() < 8);
        }
    }

    proptest! {
        /// The macro itself: patterns, multiple strategies, trailing comma.
        #[test]
        fn macro_smoke(a in 0u64..100, flag in crate::bool::ANY,) {
            prop_assert!(a < 100, "a = {a}");
            prop_assert_eq!(u64::from(flag) + u64::from(!flag), 1);
        }
    }

    proptest! {
        // Deliberately failing property (no #[test]: only invoked via
        // catch_unwind below). The 5..6 range pins the generated value.
        fn always_fails(doomed in 5u64..6, friend in 0u64..1) {
            let _ = friend;
            prop_assert!(doomed != 5, "the failing condition");
        }
    }

    #[test]
    fn failure_message_names_the_generated_values() {
        let panic = std::panic::catch_unwind(always_fails).expect_err("must fail");
        let message = panic
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| panic.downcast_ref::<&str>().map(ToString::to_string))
            .expect("panic payload is a string");
        assert!(
            message.contains("doomed = 5") && message.contains("friend = 0"),
            "failure must print every generated value, got: {message}"
        );
        assert!(
            message.contains("case 0/"),
            "case index stays in the message: {message}"
        );
    }
}
